//! [`TxnService`]: worker pool + admission control over the shard queues.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use abyss_common::{Priority, RunStats};

use super::queue::{PushOutcome, Request, ShardQueue};
use super::registry::{ProcId, ProcRegistry};
use super::ticket::{TicketInner, TicketStatus, TxnTicket};
use super::{ServeConfig, SubmitError};
use crate::db::Database;
use crate::schemes::CcProtocol;
use crate::worker::{TxnError, WorkerCtx};

/// Recompute the queue-to-ack p99 gauge every this many acks — a 496-slot
/// scan, far too hot to run per transaction.
const P99_GAUGE_EVERY: u32 = 256;

/// State shared between producers, workers, and the cancel token.
struct Shared {
    cfg: ServeConfig,
    registry: ProcRegistry,
    shards: Vec<ShardQueue>,
    /// Admission closed (set by shutdown or a cancel token).
    stop: AtomicBool,
    /// Requests shed at admission, per priority class.
    sheds: [AtomicU64; Priority::COUNT],
    /// Requests accepted into a queue.
    accepted: AtomicU64,
    /// Tickets resolved by workers (excludes sheds).
    acked: AtomicU64,
    /// Per-worker queue-to-ack p99 gauge (ns), refreshed every
    /// [`P99_GAUGE_EVERY`] acks; read by latency-based shedding.
    ack_p99_ns: Vec<AtomicU64>,
}

impl Shared {
    fn close(&self) {
        self.stop.store(true, Ordering::Release);
        for q in &self.shards {
            q.close();
        }
    }
}

/// Cancels a running service from anywhere: closes admission and wakes
/// blocked producers/workers. Already-queued requests still drain; call
/// [`TxnService::shutdown`] to join the workers and collect stats.
#[derive(Clone)]
pub struct CancelToken {
    shared: Arc<Shared>,
}

impl CancelToken {
    /// Close admission and begin the drain.
    pub fn cancel(&self) {
        self.shared.close();
    }

    /// True once the service is stopping.
    pub fn is_cancelled(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }
}

/// The open-loop submission front end (see the [module docs](super)).
///
/// `start` spawns one CC worker per `db.config().workers`, each bound to
/// its own shard queue and monomorphized over the database's scheme.
/// Producers call [`TxnService::submit`] from any thread; `&self` is all
/// they need. [`TxnService::shutdown`] drains and returns merged stats.
pub struct TxnService {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<RunStats>>,
    /// Round-robin shard cursor (producers race on it; fairness, not
    /// precision, is the point).
    rr: AtomicUsize,
}

impl TxnService {
    /// Spawn the worker pool and open admission. One worker (and one
    /// shard) per `db.config().workers`.
    pub fn start(db: Arc<Database>, registry: ProcRegistry, cfg: ServeConfig) -> Self {
        cfg.validate();
        assert!(!registry.is_empty(), "no stored procedures registered");
        let workers = db.config().workers;
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if workers as usize + cfg.producer_hint as usize > cores {
            // Producers + workers oversubscribe the machine: collapse the
            // park spin ladder so waiting workers yield the core early.
            db.park.set_early_yield(true);
        }
        let shared = Arc::new(Shared {
            shards: (0..workers)
                .map(|_| ShardQueue::new(cfg.queue_capacity))
                .collect(),
            stop: AtomicBool::new(false),
            sheds: [AtomicU64::new(0), AtomicU64::new(0)],
            accepted: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            ack_p99_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            cfg,
            registry,
        });
        let scheme = db.scheme();
        let pin = db.config().pin;
        let handles = (0..workers)
            .map(|w| {
                let db = Arc::clone(&db);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("abyss-serve-{w}"))
                    .spawn(move || {
                        // Same placement policy as the bench drivers:
                        // best-effort, before the worker touches any
                        // shared state.
                        pin.apply(w, workers);
                        crate::schemes::dispatch_protocol!(scheme, P => {
                            worker_loop::<P>(db, shared, w)
                        })
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            handles,
            rr: AtomicUsize::new(0),
        }
    }

    /// Submit by procedure name. See [`TxnService::submit_id`].
    pub fn submit(
        &self,
        proc_name: &str,
        args: &[u64],
        prio: Priority,
    ) -> Result<TxnTicket, SubmitError> {
        let id = self
            .shared
            .registry
            .id(proc_name)
            .ok_or(SubmitError::UnknownProc)?;
        self.submit_id(id, args, prio)
    }

    /// Submit one request: build the template, run admission control, and
    /// enqueue. Returns a [`TxnTicket`] that resolves exactly once —
    /// including shed requests, whose ticket comes back already resolved
    /// as [`TicketStatus::Shed`]. Errors never enqueue anything.
    pub fn submit_id(
        &self,
        id: ProcId,
        args: &[u64],
        prio: Priority,
    ) -> Result<TxnTicket, SubmitError> {
        let shared = &*self.shared;
        if shared.stop.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        let tmpl = shared.registry.build(id, args);
        let si = self.rr.fetch_add(1, Ordering::Relaxed) % shared.shards.len();
        let shard = &shared.shards[si];
        let ticket_inner = TicketInner::new();
        let ticket = TxnTicket {
            inner: Arc::clone(&ticket_inner),
        };
        if self.should_shed(si, prio) {
            shared.sheds[prio.idx()].fetch_add(1, Ordering::Relaxed);
            ticket_inner.resolve(TicketStatus::Shed);
            return Ok(ticket);
        }
        let req = Request {
            tmpl,
            prio,
            submitted: Instant::now(),
            ticket: ticket_inner,
        };
        match shard.push(req, shared.cfg.block_on_full) {
            PushOutcome::Ok => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            PushOutcome::Full => Err(SubmitError::QueueFull),
            PushOutcome::Closed => Err(SubmitError::Stopped),
        }
    }

    /// Submit a batch of requests in one call, amortizing the per-submit
    /// overhead: one round-robin shard pick and one queue-lock acquisition
    /// cover the whole batch (the batch lands on a single shard, FIFO in
    /// input order within each priority class).
    ///
    /// Admission control still runs per request — shed requests come back
    /// as already-resolved [`TicketStatus::Shed`] tickets, exactly like
    /// [`TxnService::submit`]. The returned tickets are in input order.
    /// Errors are all-or-nothing: an unknown procedure name, a full shard
    /// (non-blocking config), or a stopped service enqueues *nothing*.
    pub fn submit_batch(
        &self,
        batch: &[(&str, &[u64], Priority)],
    ) -> Result<Vec<TxnTicket>, SubmitError> {
        let shared = &*self.shared;
        if shared.stop.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        // Resolve every name before building anything: an unknown
        // procedure fails the whole batch with nothing submitted.
        let ids: Vec<ProcId> = batch
            .iter()
            .map(|(name, _, _)| shared.registry.id(name).ok_or(SubmitError::UnknownProc))
            .collect::<Result<_, _>>()?;
        // One shard pick for the whole batch — the amortization point.
        let si = self.rr.fetch_add(1, Ordering::Relaxed) % shared.shards.len();
        let shard = &shared.shards[si];
        let now = Instant::now();
        let mut tickets = Vec::with_capacity(batch.len());
        let mut reqs = Vec::with_capacity(batch.len());
        let mut shed = Vec::new();
        for (id, &(_, args, prio)) in ids.into_iter().zip(batch) {
            let inner = TicketInner::new();
            tickets.push(TxnTicket {
                inner: Arc::clone(&inner),
            });
            if self.should_shed(si, prio) {
                shed.push((inner, prio));
                continue;
            }
            reqs.push(Request {
                tmpl: shared.registry.build(id, args),
                prio,
                submitted: now,
                ticket: inner,
            });
        }
        let accepted = reqs.len() as u64;
        match shard.push_batch(reqs, shared.cfg.block_on_full) {
            PushOutcome::Ok => {
                shared.accepted.fetch_add(accepted, Ordering::Relaxed);
                // Shed tickets resolve only once the rest of the batch is
                // definitely in — an errored batch resolves nothing.
                for (inner, prio) in shed {
                    shared.sheds[prio.idx()].fetch_add(1, Ordering::Relaxed);
                    inner.resolve(TicketStatus::Shed);
                }
                Ok(tickets)
            }
            PushOutcome::Full => Err(SubmitError::QueueFull),
            PushOutcome::Closed => Err(SubmitError::Stopped),
        }
    }

    /// Admission control: shed low-class requests once the target shard's
    /// depth reaches `shed_depth` (high-class at twice that, capped by the
    /// capacity), or — low class only — once the worker's queue-to-ack p99
    /// gauge crosses `shed_ack_p99_ns`.
    fn should_shed(&self, si: usize, prio: Priority) -> bool {
        let cfg = &self.shared.cfg;
        let depth = self.shared.shards[si].depth();
        let depth_limit = match prio {
            Priority::Low => cfg.shed_depth,
            Priority::High => (cfg.shed_depth * 2).min(cfg.queue_capacity),
        };
        if depth >= depth_limit {
            return true;
        }
        prio == Priority::Low
            && cfg.shed_ack_p99_ns > 0
            && self.shared.ack_p99_ns[si].load(Ordering::Relaxed) > cfg.shed_ack_p99_ns
    }

    /// Resolve a procedure name once; pair with [`TxnService::submit_id`]
    /// to skip the per-submit name lookup on hot producer paths.
    pub fn proc_id(&self, proc_name: &str) -> Option<ProcId> {
        self.shared.registry.id(proc_name)
    }

    /// A handle that can stop the service from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Approximate total queued requests across all shards.
    pub fn queue_depth(&self) -> usize {
        self.shared.shards.iter().map(ShardQueue::depth).sum()
    }

    /// Requests shed at admission so far, per priority class.
    pub fn sheds(&self) -> [u64; Priority::COUNT] {
        [
            self.shared.sheds[0].load(Ordering::Relaxed),
            self.shared.sheds[1].load(Ordering::Relaxed),
        ]
    }

    /// Requests accepted into a queue so far.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Tickets resolved by workers so far (excludes sheds).
    pub fn acked(&self) -> u64 {
        self.shared.acked.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: close admission, let every worker drain its
    /// queue (every accepted ticket resolves), join the pool, and return
    /// the merged run statistics — per-priority queue-to-ack histograms
    /// plus the admission shed counts.
    pub fn shutdown(mut self) -> RunStats {
        self.shared.close();
        let mut merged = RunStats::default();
        for h in self.handles.drain(..) {
            merged.merge(&h.join().expect("serve worker panicked"));
        }
        for p in Priority::ALL {
            merged.sheds[p.idx()] += self.shared.sheds[p.idx()].load(Ordering::Relaxed);
        }
        merged
    }
}

impl Drop for TxnService {
    fn drop(&mut self) {
        // A dropped (not shut down) service must not leak worker threads.
        self.shared.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The per-worker serve loop: pop → execute (monomorphized hot path) →
/// record queue-to-ack latency → resolve the ticket. Exits when its shard
/// is closed and drained.
fn worker_loop<P: CcProtocol>(db: Arc<Database>, shared: Arc<Shared>, w: u32) -> RunStats {
    let mut ctx = WorkerCtx::<P>::new(db, w);
    let started = Instant::now();
    let shard = &shared.shards[w as usize];
    let mut acks_since_gauge = 0u32;
    while let Some(req) = shard.pop(shared.cfg.high_burst) {
        let status = match crate::executor::run_template(&mut ctx, &req.tmpl) {
            Ok(()) => {
                ctx.stats.record_commit(req.tmpl.tag);
                ctx.stats.tuples_committed += req.tmpl.len() as u64;
                TicketStatus::Committed
            }
            // Scheduler aborts retry inside run_template; what surfaces
            // here is terminal for this request but not for the worker.
            Err(TxnError::Abort(r)) => {
                ctx.stats.record_abort(r);
                TicketStatus::Aborted(r)
            }
            Err(TxnError::Db(_)) => TicketStatus::Failed,
        };
        let ack_ns = req.submitted.elapsed().as_nanos() as u64;
        ctx.stats.queue_ack_latency[req.prio.idx()].record(ack_ns);
        req.ticket.resolve(status);
        shared.acked.fetch_add(1, Ordering::Relaxed);
        acks_since_gauge += 1;
        if acks_since_gauge >= P99_GAUGE_EVERY {
            acks_since_gauge = 0;
            let qs = &ctx.stats.queue_ack_latency;
            let p99 = Priority::ALL
                .iter()
                .map(|p| qs[p.idx()].p99())
                .max()
                .unwrap_or(0);
            shared.ack_p99_ns[w as usize].store(p99, Ordering::Relaxed);
        }
    }
    ctx.stats.elapsed = started.elapsed().as_nanos() as u64;
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use abyss_common::{AccessOp, AccessSpec, CcScheme, TxnTemplate};
    use abyss_storage::{row, Catalog, Schema};

    fn db(scheme: CcScheme, workers: u32) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 4096);
        let db = Database::new(EngineConfig::new(scheme, workers), cat).unwrap();
        db.load_table(0, 0..256u64, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, 0);
        })
        .unwrap();
        db
    }

    fn bump_registry() -> ProcRegistry {
        let mut reg = ProcRegistry::new();
        // args = keys to increment (commutative fetch-add updates).
        reg.register(
            "bump",
            Box::new(|args: &[u64]| {
                TxnTemplate::new(
                    args.iter()
                        .map(|&k| AccessSpec::fixed(0, k, AccessOp::Update))
                        .collect(),
                )
            }),
        );
        reg
    }

    #[test]
    fn submit_executes_and_resolves() {
        let db = db(CcScheme::NoWait, 2);
        let svc = TxnService::start(Arc::clone(&db), bump_registry(), ServeConfig::default());
        let tickets: Vec<_> = (0..64)
            .map(|i| {
                svc.submit("bump", &[i % 8, 100 + i % 4], Priority::Low)
                    .expect("submit")
            })
            .collect();
        for t in &tickets {
            assert_eq!(t.wait(), TicketStatus::Committed);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.commits, 64);
        assert_eq!(stats.sheds, [0, 0]);
        assert_eq!(
            stats.queue_ack_latency[Priority::Low.idx()].count(),
            64,
            "every ack recorded in the low-class histogram"
        );
        // Effects visible: 64 txns × 2 updates spread over the keys.
        let total: u64 = (0..8)
            .chain(100..104)
            .map(|k| row::get_u64(db.schema(0), &db.peek(0, k).unwrap(), 1))
            .sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn batched_submit_executes_all_and_preserves_order() {
        let db = db(CcScheme::NoWait, 2);
        let svc = TxnService::start(Arc::clone(&db), bump_registry(), ServeConfig::default());
        // 16 batches of 8 — same effect as 128 single submits, one shard
        // pick and one lock acquisition per batch.
        let mut tickets = Vec::new();
        for b in 0..16u64 {
            let args: Vec<[u64; 1]> = (0..8).map(|i| [(b * 8 + i) % 32]).collect();
            let batch: Vec<(&str, &[u64], Priority)> = args
                .iter()
                .map(|a| ("bump", &a[..], Priority::Low))
                .collect();
            tickets.extend(svc.submit_batch(&batch).expect("batch submit"));
        }
        assert_eq!(tickets.len(), 128);
        for t in &tickets {
            assert_eq!(t.wait(), TicketStatus::Committed);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.commits, 128);
        let total: u64 = (0..32)
            .map(|k| row::get_u64(db.schema(0), &db.peek(0, k).unwrap(), 1))
            .sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn batched_submit_fails_whole_batch_on_unknown_proc() {
        let db = db(CcScheme::NoWait, 1);
        let svc = TxnService::start(Arc::clone(&db), bump_registry(), ServeConfig::default());
        let batch: Vec<(&str, &[u64], Priority)> = vec![
            ("bump", &[1][..], Priority::Low),
            ("nope", &[2][..], Priority::Low),
        ];
        assert_eq!(
            svc.submit_batch(&batch).unwrap_err(),
            SubmitError::UnknownProc
        );
        let stats = svc.shutdown();
        assert_eq!(stats.commits, 0, "a failed batch must enqueue nothing");
        // Empty batches succeed trivially.
        let db = db2();
        let svc = TxnService::start(db, bump_registry(), ServeConfig::default());
        assert!(svc.submit_batch(&[]).unwrap().is_empty());
        svc.shutdown();
    }

    fn db2() -> Arc<Database> {
        db(CcScheme::NoWait, 1)
    }

    #[test]
    fn unknown_proc_and_stopped_submit_fail() {
        let db = db(CcScheme::Silo, 1);
        let svc = TxnService::start(db, bump_registry(), ServeConfig::default());
        assert_eq!(
            svc.submit("nope", &[1], Priority::High).unwrap_err(),
            SubmitError::UnknownProc
        );
        let token = svc.cancel_token();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(
            svc.submit("bump", &[1], Priority::High).unwrap_err(),
            SubmitError::Stopped
        );
        let stats = svc.shutdown();
        assert_eq!(stats.commits, 0);
    }

    #[test]
    fn nonblocking_full_shard_reports_queue_full() {
        let db = db(CcScheme::NoWait, 1);
        // Capacity 2 with shedding effectively disabled relative to the
        // bound (shed_depth == capacity): the hard bound is reachable.
        let cfg = ServeConfig {
            queue_capacity: 2,
            shed_depth: 2,
            block_on_full: false,
            ..ServeConfig::default()
        };
        let svc = TxnService::start(db, bump_registry(), cfg);
        // Saturate faster than the single worker can drain: submit until
        // we observe QueueFull or Shed; with capacity 2 one of them must
        // appear quickly.
        let mut full_or_shed = false;
        let mut tickets = Vec::new();
        for i in 0..10_000u64 {
            match svc.submit("bump", &[i % 16], Priority::Low) {
                Ok(t) => {
                    if t.status() == TicketStatus::Shed {
                        full_or_shed = true;
                        break;
                    }
                    tickets.push(t);
                }
                Err(SubmitError::QueueFull) => {
                    full_or_shed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(full_or_shed, "bounded queue never pushed back");
        let stats = svc.shutdown();
        // Every accepted ticket resolved by the drain.
        for t in &tickets {
            assert!(t.is_resolved());
        }
        assert!(stats.commits <= tickets.len() as u64 + 1);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let db = db(CcScheme::Silo, 2);
        let svc = TxnService::start(Arc::clone(&db), bump_registry(), ServeConfig::default());
        let tickets: Vec<_> = (0..200)
            .map(|i| svc.submit("bump", &[i % 32], Priority::High).unwrap())
            .collect();
        let stats = svc.shutdown();
        for (i, t) in tickets.iter().enumerate() {
            assert!(t.is_resolved(), "ticket {i} unresolved after shutdown");
        }
        assert_eq!(stats.commits, 200);
        let total: u64 = (0..32)
            .map(|k| row::get_u64(db.schema(0), &db.peek(0, k).unwrap(), 1))
            .sum();
        assert_eq!(total, 200);
    }
}
