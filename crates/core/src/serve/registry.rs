//! The stored-procedure registry.
//!
//! Producers submit by name (or by the cheaper pre-resolved [`ProcId`])
//! plus a flat `&[u64]` argument vector; the registered builder turns the
//! arguments into a [`TxnTemplate`] on the submitting thread, so workers
//! only ever execute — they never parse. `abyss-workload` ships builders
//! covering the YCSB and TPC-C transaction bodies (`procs` module);
//! anything producing a valid template can register here.

use abyss_common::TxnTemplate;

/// A stored-procedure body: arguments in, executable template out.
pub type ProcFn = Box<dyn Fn(&[u64]) -> TxnTemplate + Send + Sync>;

/// Pre-resolved registry slot, cheaper than a name lookup per submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(u32);

/// Name → builder table, fixed at service start (no registration after
/// workers spawn, so lookups are lock-free).
#[derive(Default)]
pub struct ProcRegistry {
    names: Vec<String>,
    procs: Vec<ProcFn>,
}

impl ProcRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `proc` under `name` and return its [`ProcId`]. Panics on a
    /// duplicate name — procedure sets are static configuration, and a
    /// silent overwrite would misroute every later submit.
    pub fn register(&mut self, name: impl Into<String>, proc_fn: ProcFn) -> ProcId {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "stored procedure {name:?} registered twice"
        );
        let id = ProcId(self.procs.len() as u32);
        self.names.push(name);
        self.procs.push(proc_fn);
        id
    }

    /// Resolve a name to its [`ProcId`].
    pub fn id(&self, name: &str) -> Option<ProcId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| ProcId(i as u32))
    }

    /// The name registered under `id`.
    pub fn name(&self, id: ProcId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Build the template for one submission.
    pub fn build(&self, id: ProcId, args: &[u64]) -> TxnTemplate {
        (self.procs[id.0 as usize])(args)
    }

    /// Registered procedure count.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

impl std::fmt::Debug for ProcRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcRegistry")
            .field("names", &self.names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_common::{AccessOp, AccessSpec};

    fn reg() -> ProcRegistry {
        let mut r = ProcRegistry::new();
        r.register(
            "read_one",
            Box::new(|args: &[u64]| {
                TxnTemplate::new(vec![AccessSpec::fixed(0, args[0], AccessOp::Read)])
            }),
        );
        r
    }

    #[test]
    fn register_resolve_build() {
        let r = reg();
        let id = r.id("read_one").expect("registered");
        assert_eq!(r.name(id), "read_one");
        assert_eq!(r.len(), 1);
        let tmpl = r.build(id, &[42]);
        assert_eq!(tmpl.accesses.len(), 1);
        assert!(r.id("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut r = reg();
        r.register(
            "read_one",
            Box::new(|_| TxnTemplate::new(vec![AccessSpec::fixed(0, 0, AccessOp::Read)])),
        );
    }
}
