//! Bounded two-priority MPSC shard queues.
//!
//! The service keeps one [`ShardQueue`] per CC worker: many producers push
//! (round-robin across shards), exactly one worker pops. Each shard holds
//! two FIFO rings — one per [`Priority`] class — under a single mutex, with
//! condvars for "not empty" (worker side) and "not full" (blocking
//! producers). A relaxed depth mirror lets the admission path read queue
//! depth without taking the lock.
//!
//! Dequeue discipline: high-priority first, but after
//! [`ShardQueue::pop`]'s `high_burst` consecutive high-class dequeues one
//! low-class request is served if any is waiting — so a saturating
//! high-class stream delays the low class by at most `high_burst`
//! transactions per low-class dequeue, never forever.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use abyss_common::{Priority, TxnTemplate};

use super::ticket::TicketInner;

/// One queued submission.
#[derive(Debug)]
pub(crate) struct Request {
    /// The built stored-procedure template to execute.
    pub tmpl: TxnTemplate,
    /// Priority class (selects the ring and the latency histogram).
    pub prio: Priority,
    /// When `submit` accepted the request — the queue-to-ack clock.
    pub submitted: Instant,
    /// Resolution cell shared with the producer's `TxnTicket`.
    pub ticket: std::sync::Arc<TicketInner>,
}

/// Outcome of a push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushOutcome {
    /// Enqueued.
    Ok,
    /// Shard at capacity and the caller asked not to block.
    Full,
    /// The queue is closed (service shutting down).
    Closed,
}

struct Shard {
    /// One FIFO per priority class, indexed by [`Priority::idx`].
    classes: [VecDeque<Request>; Priority::COUNT],
    /// Consecutive high-class dequeues since the last low-class one.
    high_streak: u32,
    /// Closed for admission: pops drain the remainder, pushes fail.
    closed: bool,
}

impl Shard {
    fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// The starvation-free dequeue discipline (see module docs).
    fn take(&mut self, high_burst: u32) -> Option<Request> {
        let hi = Priority::High.idx();
        let lo = Priority::Low.idx();
        let force_low = self.high_streak >= high_burst && !self.classes[lo].is_empty();
        if !force_low {
            if let Some(r) = self.classes[hi].pop_front() {
                self.high_streak += 1;
                return Some(r);
            }
        }
        if let Some(r) = self.classes[lo].pop_front() {
            self.high_streak = 0;
            return Some(r);
        }
        // force_low guarantees a low entry under the lock, so this only
        // runs when both rings are empty.
        None
    }
}

/// A bounded two-priority queue feeding one worker.
pub(crate) struct ShardQueue {
    inner: Mutex<Shard>,
    nonempty: Condvar,
    nonfull: Condvar,
    /// Relaxed mirror of the total queued count, for lock-free admission
    /// reads. Updated under the lock, so it trails by at most one
    /// push/pop — fine for a shed threshold.
    depth: AtomicUsize,
    capacity: usize,
}

impl ShardQueue {
    /// An open queue bounded at `capacity` requests across both classes.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shard capacity must be positive");
        Self {
            inner: Mutex::new(Shard {
                classes: [VecDeque::new(), VecDeque::new()],
                high_streak: 0,
                closed: false,
            }),
            nonempty: Condvar::new(),
            nonfull: Condvar::new(),
            depth: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Approximate total queued count (both classes).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Enqueue `req`. With `block`, waits for space while the queue is
    /// open; otherwise reports [`PushOutcome::Full`] immediately.
    pub fn push(&self, req: Request, block: bool) -> PushOutcome {
        let mut s = self.inner.lock().expect("shard lock");
        loop {
            if s.closed {
                return PushOutcome::Closed;
            }
            let len = s.len();
            if len < self.capacity {
                s.classes[req.prio.idx()].push_back(req);
                self.depth.store(len + 1, Ordering::Relaxed);
                drop(s);
                self.nonempty.notify_one();
                return PushOutcome::Ok;
            }
            if !block {
                return PushOutcome::Full;
            }
            s = self.nonfull.wait(s).expect("shard lock");
        }
    }

    /// Enqueue a batch of requests under one lock acquisition. With
    /// `block`, waits for enough space for the *whole* batch while the
    /// queue is open (all-or-nothing admission, so a batch never
    /// interleaves with a competing batch's partial admit); otherwise
    /// reports [`PushOutcome::Full`] immediately without enqueuing any.
    /// One `notify_all` wakes the worker for the entire batch.
    pub fn push_batch(&self, reqs: Vec<Request>, block: bool) -> PushOutcome {
        if reqs.is_empty() {
            return PushOutcome::Ok;
        }
        if reqs.len() > self.capacity {
            // Could never fit even into an empty shard — blocking would
            // deadlock the producer.
            return PushOutcome::Full;
        }
        let mut s = self.inner.lock().expect("shard lock");
        loop {
            if s.closed {
                return PushOutcome::Closed;
            }
            let len = s.len();
            if len + reqs.len() <= self.capacity {
                let n = reqs.len();
                for req in reqs {
                    s.classes[req.prio.idx()].push_back(req);
                }
                self.depth.store(len + n, Ordering::Relaxed);
                drop(s);
                self.nonempty.notify_all();
                return PushOutcome::Ok;
            }
            if !block {
                return PushOutcome::Full;
            }
            s = self.nonfull.wait(s).expect("shard lock");
        }
    }

    /// Dequeue the next request per the priority discipline. Blocks while
    /// the queue is open and empty; returns `None` once it is closed *and*
    /// drained — the worker's exit signal.
    pub fn pop(&self, high_burst: u32) -> Option<Request> {
        let mut s = self.inner.lock().expect("shard lock");
        loop {
            if let Some(req) = s.take(high_burst) {
                self.depth.store(s.len(), Ordering::Relaxed);
                drop(s);
                self.nonfull.notify_one();
                return Some(req);
            }
            if s.closed {
                return None;
            }
            s = self.nonempty.wait(s).expect("shard lock");
        }
    }

    /// Close the queue: new pushes fail, blocked producers and the worker
    /// wake, pops drain the remainder.
    pub fn close(&self) {
        let mut s = self.inner.lock().expect("shard lock");
        s.closed = true;
        drop(s);
        self.nonempty.notify_all();
        self.nonfull.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn req(prio: Priority, key: u64) -> Request {
        Request {
            tmpl: TxnTemplate::new(vec![abyss_common::AccessSpec::fixed(
                0,
                key,
                abyss_common::AccessOp::Read,
            )]),
            prio,
            submitted: Instant::now(),
            ticket: TicketInner::new(),
        }
    }

    fn key_of(r: &Request) -> u64 {
        match r.tmpl.accesses[0].key {
            abyss_common::KeySpec::Fixed(k) => k,
            _ => unreachable!(),
        }
    }

    #[test]
    fn fifo_within_class_high_first_across() {
        let q = ShardQueue::new(16);
        q.push(req(Priority::Low, 1), false);
        q.push(req(Priority::Low, 2), false);
        q.push(req(Priority::High, 3), false);
        let order: Vec<u64> = (0..3).map(|_| key_of(&q.pop(8).unwrap())).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn high_burst_cannot_starve_low() {
        let q = ShardQueue::new(64);
        for k in 0..20 {
            q.push(req(Priority::High, k), false);
        }
        q.push(req(Priority::Low, 100), false);
        // With high_burst = 4, the low request surfaces after at most 4
        // high dequeues.
        let mut seen_low_at = None;
        for i in 0..21 {
            let r = q.pop(4).unwrap();
            if r.prio == Priority::Low {
                seen_low_at = Some(i);
                break;
            }
        }
        assert!(
            seen_low_at.is_some_and(|i| i <= 4),
            "low request starved: {seen_low_at:?}"
        );
    }

    #[test]
    fn bounded_capacity_and_nonblocking_full() {
        let q = ShardQueue::new(2);
        assert_eq!(q.push(req(Priority::Low, 1), false), PushOutcome::Ok);
        assert_eq!(q.push(req(Priority::High, 2), false), PushOutcome::Ok);
        assert_eq!(q.push(req(Priority::Low, 3), false), PushOutcome::Full);
        assert_eq!(q.depth(), 2);
        q.pop(8).unwrap();
        assert_eq!(q.push(req(Priority::Low, 3), false), PushOutcome::Ok);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(ShardQueue::new(1));
        q.push(req(Priority::Low, 1), false);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(req(Priority::Low, 2), true));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(key_of(&q.pop(8).unwrap()), 1);
        assert_eq!(h.join().unwrap(), PushOutcome::Ok);
        assert_eq!(key_of(&q.pop(8).unwrap()), 2);
    }

    #[test]
    fn batch_push_is_all_or_nothing() {
        let q = ShardQueue::new(4);
        q.push(req(Priority::Low, 0), false);
        // 4 more cannot fit next to the resident one: nothing is admitted.
        let batch: Vec<Request> = (1..5).map(|k| req(Priority::Low, k)).collect();
        assert_eq!(q.push_batch(batch, false), PushOutcome::Full);
        assert_eq!(q.depth(), 1);
        // 3 fit; FIFO order within the class is preserved.
        let batch: Vec<Request> = (1..4).map(|k| req(Priority::Low, k)).collect();
        assert_eq!(q.push_batch(batch, false), PushOutcome::Ok);
        assert_eq!(q.depth(), 4);
        let order: Vec<u64> = (0..4).map(|_| key_of(&q.pop(8).unwrap())).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        // A batch larger than the whole shard is rejected even when asked
        // to block (it could never fit).
        let batch: Vec<Request> = (0..5).map(|k| req(Priority::Low, k)).collect();
        assert_eq!(q.push_batch(batch, true), PushOutcome::Full);
        // Empty batches are a no-op success.
        assert_eq!(q.push_batch(Vec::new(), false), PushOutcome::Ok);
        // Closed queues reject batches like singles.
        q.close();
        let batch = vec![req(Priority::Low, 9)];
        assert_eq!(q.push_batch(batch, false), PushOutcome::Closed);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Arc::new(ShardQueue::new(8));
        q.push(req(Priority::Low, 1), false);
        q.close();
        assert_eq!(q.push(req(Priority::Low, 2), true), PushOutcome::Closed);
        assert!(q.pop(8).is_some(), "queued work drains after close");
        assert!(q.pop(8).is_none(), "drained + closed means exit");
    }

    #[test]
    fn close_wakes_blocked_worker() {
        let q = Arc::new(ShardQueue::new(8));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop(8));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(h.join().unwrap().is_none());
    }
}
