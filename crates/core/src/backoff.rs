//! Adaptive contention regulation: a per-worker AIMD backoff controller.
//!
//! The paper's restart model (§3.2) — and this engine's default — backs an
//! aborted transaction off by a *fixed* escalation schedule: the penalty
//! depends only on how many times this one template has aborted in a row,
//! not on how contended the system actually is. Under a high-theta Zipfian
//! write mix that schedule is wrong in both directions at once: too timid
//! while every worker is aborting (the optimistic schemes re-execute
//! doomed transactions at full speed, burning the cycles their neighbors
//! need to commit), and too aggressive the moment contention clears.
//!
//! [`BackoffCtl`] replaces the schedule with feedback. Each worker keeps a
//! sliding window of its last [`WINDOW`] attempt outcomes and a current
//! delay. Aborts grow the delay **multiplicatively**, scaled by the
//! window's abort rate and a per-scheme gain ([`CcScheme::backoff_gain_pct`]
//! — OCC-family schemes want aggressive restraint, 2PL variants barely
//! any); commits shrink it **additively** toward zero. AIMD converges to
//! an equilibrium where the delay tracks the contention level: zero under
//! no contention (the theta-0 regression budget), pinned near the
//! per-scheme ceiling under a pathological hot-key storm.
//!
//! The controller is pure integer state — no clocks, no RNG — so seeded
//! single-worker replays remain bit-deterministic; jitter is applied by
//! the worker from its own xorshift stream when the delay is *executed*,
//! not when it is chosen.

use abyss_common::CcScheme;

/// Sliding-window length, in attempt outcomes.
pub const WINDOW: u32 = 32;

/// Seed step for the multiplicative increase: the first abort out of a
/// calm window starts the delay here (1 µs) rather than at zero, which
/// multiplication alone could never leave.
const MIN_STEP_NS: u64 = 1_000;

/// Divisor of the ceiling that sets the additive decrease step: one
/// commit walks the delay down by `ceiling / 256` (≥ 100 ns), so a fully
/// backed-off worker returns to zero delay within ~256 uncontended
/// commits regardless of scheme.
const DECAY_DIV: u64 = 256;

/// Per-worker AIMD backoff controller (see the module docs).
#[derive(Debug, Clone)]
pub struct BackoffCtl {
    /// Current delay in nanoseconds (the controller's whole state).
    delay_ns: u64,
    /// Per-scheme clamp, in nanoseconds.
    ceiling_ns: u64,
    /// Per-scheme multiplicative gain, percent per unit abort rate.
    gain_pct: u64,
    /// Ring bitset of the last [`WINDOW`] outcomes (bit set = abort).
    outcomes: u32,
    /// Outcomes recorded so far, saturating at [`WINDOW`].
    recorded: u32,
    /// Next ring position.
    pos: u32,
}

impl BackoffCtl {
    /// A controller with explicit gains (tests); runs start at zero delay.
    pub fn new(gain_pct: u32, ceiling_us: u64) -> Self {
        Self {
            delay_ns: 0,
            ceiling_ns: ceiling_us.saturating_mul(1_000),
            gain_pct: u64::from(gain_pct),
            outcomes: 0,
            recorded: 0,
            pos: 0,
        }
    }

    /// The controller tuned for `scheme`'s capability gains.
    pub fn for_scheme(scheme: CcScheme) -> Self {
        Self::new(scheme.backoff_gain_pct(), scheme.backoff_ceiling_us())
    }

    /// Record one attempt outcome in the ring.
    fn record(&mut self, aborted: bool) {
        let bit = 1u32 << self.pos;
        if aborted {
            self.outcomes |= bit;
        } else {
            self.outcomes &= !bit;
        }
        self.pos = (self.pos + 1) % WINDOW;
        self.recorded = (self.recorded + 1).min(WINDOW);
    }

    /// Aborts currently in the window.
    pub fn window_aborts(&self) -> u32 {
        self.outcomes.count_ones()
    }

    /// Outcomes currently in the window (< [`WINDOW`] until warm).
    pub fn window_len(&self) -> u32 {
        self.recorded
    }

    /// The current delay in nanoseconds.
    pub fn delay_ns(&self) -> u64 {
        self.delay_ns
    }

    /// A commit: additive decrease toward the zero floor.
    pub fn on_commit(&mut self) {
        self.record(false);
        let step = (self.ceiling_ns / DECAY_DIV).max(100);
        self.delay_ns = self.delay_ns.saturating_sub(step);
    }

    /// An abort: multiplicative increase scaled by the window's abort
    /// rate, clamped to the ceiling. Returns the delay the worker should
    /// execute *now* (jitter is the caller's).
    pub fn on_abort(&mut self) -> u64 {
        self.record(true);
        let len = u64::from(self.recorded.max(1));
        let aborts = u64::from(self.window_aborts());
        let grow = self.delay_ns.max(MIN_STEP_NS) * self.gain_pct * aborts / (100 * len);
        self.delay_ns = (self.delay_ns + grow).min(self.ceiling_ns);
        self.delay_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `n` outcomes with `abort_every` (0 = never abort).
    fn drive(ctl: &mut BackoffCtl, n: u32, abort_every: u32) {
        for i in 0..n {
            if abort_every != 0 && i % abort_every == 0 {
                ctl.on_abort();
            } else {
                ctl.on_commit();
            }
        }
    }

    #[test]
    fn converges_to_floor_on_zero_aborts() {
        let mut ctl = BackoffCtl::for_scheme(CcScheme::Occ);
        // Pin the delay at the ceiling first.
        for _ in 0..64 {
            ctl.on_abort();
        }
        assert!(ctl.delay_ns() > 0);
        // A window-plus of clean commits must drain it all the way to 0.
        drive(&mut ctl, 2 * DECAY_DIV as u32, 0);
        assert_eq!(ctl.delay_ns(), 0, "commits must decay the delay to zero");
        // And it stays there — no residual penalty on further commits.
        ctl.on_commit();
        assert_eq!(ctl.delay_ns(), 0);
    }

    #[test]
    fn clamps_to_ceiling_under_total_aborts() {
        for scheme in CcScheme::ALL {
            let mut ctl = BackoffCtl::for_scheme(scheme);
            for _ in 0..256 {
                let d = ctl.on_abort();
                assert!(
                    d <= scheme.backoff_ceiling_us() * 1_000,
                    "{scheme}: delay above ceiling"
                );
            }
            assert_eq!(
                ctl.delay_ns(),
                scheme.backoff_ceiling_us() * 1_000,
                "{scheme}: 100% aborts must pin the delay at the ceiling"
            );
        }
    }

    #[test]
    fn settled_delay_is_monotone_in_abort_rate() {
        // Higher abort rates must settle at (weakly) higher delays.
        let settle = |abort_every: u32| {
            let mut ctl = BackoffCtl::for_scheme(CcScheme::Silo);
            drive(&mut ctl, 512, abort_every);
            ctl.delay_ns()
        };
        let calm = settle(0); // 0% aborts
        let mild = settle(8); // 12.5%
        let hot = settle(2); // 50%
        let storm = settle(1); // 100%
        assert_eq!(calm, 0);
        assert!(mild <= hot, "12.5% settled above 50%: {mild} > {hot}");
        assert!(hot <= storm, "50% settled above 100%: {hot} > {storm}");
        assert!(storm > 0);
    }

    #[test]
    fn gain_orders_schemes() {
        // Same abort pattern: the OCC-family controller must back off at
        // least as far as the 2PL one (aggressive vs minimal restraint).
        let mut occ = BackoffCtl::for_scheme(CcScheme::Occ);
        let mut twopl = BackoffCtl::for_scheme(CcScheme::NoWait);
        drive(&mut occ, 128, 2);
        drive(&mut twopl, 128, 2);
        assert!(occ.delay_ns() >= twopl.delay_ns());
    }

    #[test]
    fn controller_is_deterministic() {
        // Pure integer state: identical outcome sequences produce
        // identical delay trajectories.
        let run = || {
            let mut ctl = BackoffCtl::for_scheme(CcScheme::TicToc);
            let mut trace = Vec::new();
            for i in 0..200u32 {
                if i % 3 == 0 {
                    trace.push(ctl.on_abort());
                } else {
                    ctl.on_commit();
                    trace.push(ctl.delay_ns());
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn window_tracks_the_last_32_outcomes() {
        let mut ctl = BackoffCtl::new(100, 1_000);
        for _ in 0..WINDOW {
            ctl.on_abort();
        }
        assert_eq!(ctl.window_aborts(), WINDOW);
        assert_eq!(ctl.window_len(), WINDOW);
        for _ in 0..WINDOW {
            ctl.on_commit();
        }
        // The abort history has rolled fully out of the ring.
        assert_eq!(ctl.window_aborts(), 0);
        assert_eq!(ctl.window_len(), WINDOW);
    }
}
