//! Concurrent ordered index: a B+-tree with optimistic lock coupling.
//!
//! The hash index ([`crate::index`]) serves the paper's point accesses;
//! scan workloads (YCSB-E, TPC-C order-status) need an *ordered* index.
//! This is a B+-tree in the Masstree/OLC style:
//!
//! * every node carries a **version word** (bit 63 = locked, low bits =
//!   version counter bumped on every unlock-after-modify);
//! * **readers are optimistic**: they never take a latch — a traversal
//!   reads a node's version, reads its fields, and re-reads the version;
//!   a change (or a held lock) restarts the descent. All mutable node
//!   fields are atomics, so optimistic reads are data-race-free;
//! * **writers use lock coupling**: inserts descend top-down holding at
//!   most a parent/child pair, splitting full children preemptively so a
//!   split never propagates upward; removals latch-crab straight to the
//!   leaf. Underfull leaves are allowed (no merging), so nodes are never
//!   freed mid-run and node references stay valid for the tree's lifetime;
//! * **leaves are chained** for range scans, and every leaf exposes the
//!   hooks the concurrency-control schemes above need for phantom-safe
//!   scans: a stable [`LeafId`], the version observed by the scan (Silo's
//!   node-set validation), and two monotonic timestamp tags —
//!   `scan_rts` (the largest timestamp that scanned the leaf's key range)
//!   and `del_wts` (the largest timestamp that structurally deleted from
//!   it) — the leaf-granularity analogue of basic T/O's per-tuple
//!   `rts`/`wts`, covering the *gaps* between keys.
//!
//! The tree maps [`Key`] → [`RowIdx`] exactly like the hash index; the
//! catalog registers one per ordered table alongside it.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use abyss_common::{DbError, Key, RowIdx, TableId};
use parking_lot::Mutex;

/// Maximum keys per node. A node is split when a writer descends into it
/// at this occupancy, so live occupancy is `1..=FANOUT`.
pub const FANOUT: usize = 16;

const LOCKED: u64 = 1 << 63;

#[inline]
fn is_locked(v: u64) -> bool {
    v & LOCKED != 0
}

/// An opaque, stable reference to a leaf node. Valid for the lifetime of
/// the tree that returned it (nodes are never freed while the tree lives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafId(usize);

/// One tree node. Mutable fields are atomics so optimistic readers can
/// load them concurrently with a writer's stores; torn *logical* states
/// are rejected by the version re-check, racy *physical* reads are defined
/// behavior.
struct Node {
    /// Version word: bit 63 = write-locked, low bits = modification count.
    version: AtomicU64,
    /// Leaf or internal (fixed at allocation).
    is_leaf: bool,
    /// Number of keys in `keys`.
    count: AtomicU64,
    /// Sorted keys. Internal nodes: `keys[i]` is the smallest key reachable
    /// through `slots[i + 1]`.
    keys: [AtomicU64; FANOUT],
    /// Leaf: `slots[i]` is the row of `keys[i]`. Internal: `slots[i]` is a
    /// child pointer; `slots[0..=count]` are populated.
    slots: [AtomicU64; FANOUT + 1],
    /// Leaf chain (next leaf in key order; null-terminated).
    next: AtomicPtr<Node>,
    /// Largest timestamp that range-scanned this leaf (T/O gap protection).
    scan_rts: AtomicU64,
    /// Largest timestamp whose commit deleted a key from this leaf.
    del_wts: AtomicU64,
}

impl Node {
    fn new(is_leaf: bool) -> Self {
        Self {
            version: AtomicU64::new(0),
            is_leaf,
            count: AtomicU64::new(0),
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
            next: AtomicPtr::new(std::ptr::null_mut()),
            scan_rts: AtomicU64::new(0),
            del_wts: AtomicU64::new(0),
        }
    }

    /// Spin until the node is unlocked, returning the stable version.
    fn stable_version(&self) -> u64 {
        loop {
            let v = self.version.load(Ordering::Acquire);
            if !is_locked(v) {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Acquire the node's write lock (bounded spinning CAS).
    fn lock(&self) {
        loop {
            let v = self.version.load(Ordering::Acquire);
            if !is_locked(v)
                && self
                    .version
                    .compare_exchange_weak(v, v | LOCKED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Release the write lock, bumping the version (the node was modified).
    fn unlock_modified(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(is_locked(v));
        self.version.store((v & !LOCKED) + 1, Ordering::Release);
    }

    /// Release the write lock without a version bump (nothing changed
    /// since the last bump — a node modified under the lock must have had
    /// [`Node::mark_modified`] called first).
    fn unlock_clean(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(is_locked(v));
        self.version.store(v & !LOCKED, Ordering::Release);
    }

    /// Bump the version while still holding the lock. Readers that
    /// captured the pre-modification version can then never validate
    /// against the post-modification contents, regardless of which unlock
    /// variant eventually releases the node.
    fn mark_modified(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(is_locked(v));
        self.version.store(v + 1, Ordering::Release);
    }

    #[inline]
    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed) as usize
    }

    #[inline]
    fn key(&self, i: usize) -> Key {
        self.keys[i].load(Ordering::Relaxed)
    }

    #[inline]
    fn slot(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }

    #[inline]
    fn child(&self, i: usize) -> *mut Node {
        self.slot(i) as *mut Node
    }

    /// Child index for `key` in an internal node: one past the last
    /// separator `<= key`.
    fn child_index(&self, key: Key) -> usize {
        let n = self.len();
        let mut i = 0;
        while i < n && key >= self.key(i) {
            i += 1;
        }
        i
    }

    /// Position of the first key `>= key` in a leaf.
    fn leaf_lower_bound(&self, key: Key) -> usize {
        let n = self.len();
        let mut i = 0;
        while i < n && self.key(i) < key {
            i += 1;
        }
        i
    }
}

/// A consistent observation of one leaf during a scan: the [`LeafId`] and
/// the version the entries were read at. The scheme layers use these for
/// phantom protection (Silo/OCC re-validate the version at commit).
pub type LeafObservation = (LeafId, u64);

/// Outcome of [`BPlusTree::insert_guarded`] / the tracked insert paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardedInsert {
    /// Published.
    Inserted {
        /// The leaf the key landed in.
        leaf: LeafId,
        /// The leaf's version as captured **under its write lock** just
        /// before this insert modified it — i.e. the last version an
        /// optimistic reader could have validated against. The insert
        /// publishes exactly `prev_version + 1`. Lets OCC/SILO advance a
        /// node-set entry for their *own* insert if and only if no foreign
        /// modification slipped in between the scan and the insert.
        prev_version: u64,
    },
    /// Refused: the covering leaf's `scan_rts` tag exceeds the writer's —
    /// a later-timestamp scan already covered the target gap.
    GapProtected,
}

/// The result of [`BPlusTree::scan`].
#[derive(Debug, Default)]
pub struct ScanResult {
    /// `(key, row)` pairs inside the requested range, key-ascending.
    pub entries: Vec<(Key, RowIdx)>,
    /// Every leaf whose key range intersected the scan, with the version
    /// it was read at (always at least one leaf, even for empty ranges —
    /// the gap itself lives somewhere).
    pub leaves: Vec<LeafObservation>,
    /// Optimistic retries taken (version changed under a reader).
    pub retries: u64,
}

/// Structural health statistics (bench/regression surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtreeHealth {
    /// Levels from root to leaf (a lone root leaf has height 1).
    pub height: u32,
    /// Total allocated nodes (splits only add; removals never shrink).
    pub nodes: u64,
    /// Live keys.
    pub len: u64,
}

/// A concurrent ordered index mapping keys to row indexes.
pub struct BPlusTree {
    table: TableId,
    root: AtomicPtr<Node>,
    /// Every node ever allocated — reclaimed in `Drop`, counted for stats.
    /// Only split paths touch this, so the latch is cold.
    nodes: Mutex<Vec<*mut Node>>,
    height: AtomicU64,
    len: AtomicU64,
}

// SAFETY: all shared node state is accessed through atomics; the node
// registry is latch-protected; raw pointers target nodes that live as
// long as the tree.
unsafe impl Send for BPlusTree {}
unsafe impl Sync for BPlusTree {}

impl BPlusTree {
    /// An empty tree for `table`.
    pub fn new(table: TableId) -> Self {
        let root = Box::into_raw(Box::new(Node::new(true)));
        Self {
            table,
            root: AtomicPtr::new(root),
            nodes: Mutex::new(vec![root]),
            height: AtomicU64::new(1),
            len: AtomicU64::new(0),
        }
    }

    fn alloc(&self, is_leaf: bool) -> *mut Node {
        let n = Box::into_raw(Box::new(Node::new(is_leaf)));
        self.nodes.lock().push(n);
        n
    }

    /// Live keys.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural statistics.
    pub fn health(&self) -> BtreeHealth {
        BtreeHealth {
            height: self.height.load(Ordering::Acquire) as u32,
            nodes: self.nodes.lock().len() as u64,
            len: self.len(),
        }
    }

    /// The version of `leaf` right now (unlocked snapshot; spins past a
    /// concurrent writer).
    pub fn leaf_version(&self, leaf: LeafId) -> u64 {
        // SAFETY: LeafIds remain valid for the tree's lifetime.
        unsafe { &*(leaf.0 as *const Node) }.stable_version()
    }

    /// Raise `leaf`'s scan-rts tag to at least `ts` (monotonic).
    pub fn leaf_bump_scan_rts(&self, leaf: LeafId, ts: u64) {
        // SAFETY: see leaf_version.
        unsafe { &*(leaf.0 as *const Node) }
            .scan_rts
            .fetch_max(ts, Ordering::AcqRel);
    }

    /// The leaf's scan-rts tag.
    pub fn leaf_scan_rts(&self, leaf: LeafId) -> u64 {
        // SAFETY: see leaf_version.
        unsafe { &*(leaf.0 as *const Node) }
            .scan_rts
            .load(Ordering::Acquire)
    }

    /// Raise `leaf`'s delete-wts tag to at least `ts` (monotonic).
    pub fn leaf_bump_del_wts(&self, leaf: LeafId, ts: u64) {
        // SAFETY: see leaf_version.
        unsafe { &*(leaf.0 as *const Node) }
            .del_wts
            .fetch_max(ts, Ordering::AcqRel);
    }

    /// The leaf's delete-wts tag.
    pub fn leaf_del_wts(&self, leaf: LeafId) -> u64 {
        // SAFETY: see leaf_version.
        unsafe { &*(leaf.0 as *const Node) }
            .del_wts
            .load(Ordering::Acquire)
    }

    // ------------------------------------------------------------ writers

    /// Insert `key → row`. Fails on duplicates. Returns the leaf the key
    /// landed in (for scheme-level gap checks against `scan_rts`).
    pub fn insert(&self, key: Key, row: RowIdx) -> Result<LeafId, DbError> {
        match self.insert_inner(key, row, None)? {
            GuardedInsert::Inserted { leaf, .. } => Ok(leaf),
            GuardedInsert::GapProtected => unreachable!("unguarded insert"),
        }
    }

    /// [`BPlusTree::insert`] additionally reporting the landing leaf's
    /// pre-insert version (see [`GuardedInsert::Inserted`]).
    pub fn insert_tracked(&self, key: Key, row: RowIdx) -> Result<(LeafId, u64), DbError> {
        match self.insert_inner(key, row, None)? {
            GuardedInsert::Inserted { leaf, prev_version } => Ok((leaf, prev_version)),
            GuardedInsert::GapProtected => unreachable!("unguarded insert"),
        }
    }

    /// Insert `key → row` unless the covering leaf's `scan_rts` tag
    /// exceeds `tag`. The check runs **under the leaf's write lock**, so
    /// it is atomic with publication: a scanner that raised the tag first
    /// refuses this insert, and a scanner that raises it afterwards is
    /// guaranteed to observe the published key (its version re-validation
    /// spins past our lock). This closes the timestamp schemes' phantom
    /// window between "check the gap" and "publish the key".
    pub fn insert_guarded(
        &self,
        key: Key,
        row: RowIdx,
        tag: u64,
    ) -> Result<GuardedInsert, DbError> {
        self.insert_inner(key, row, Some(tag))
    }

    fn insert_inner(
        &self,
        key: Key,
        row: RowIdx,
        guard: Option<u64>,
    ) -> Result<GuardedInsert, DbError> {
        loop {
            let root = self.root.load(Ordering::Acquire);
            // SAFETY: nodes live as long as the tree.
            let root_ref = unsafe { &*root };
            root_ref.lock();
            if self.root.load(Ordering::Acquire) != root {
                root_ref.unlock_clean();
                continue;
            }
            let mut node = root;
            if root_ref.len() == FANOUT {
                // Grow: a fresh root with the old root as its only child,
                // then split it. The new root is published only once fully
                // built, so readers always see a consistent node.
                let new_root = self.alloc(false);
                // SAFETY: new_root is unreachable until the store below.
                let nr = unsafe { &*new_root };
                nr.lock(); // uncontended; spans construction + publication
                nr.slots[0].store(root as u64, Ordering::Relaxed);
                nr.count.store(0, Ordering::Relaxed);
                self.split_child(nr, 0);
                self.root.store(new_root, Ordering::Release);
                self.height.fetch_add(1, Ordering::AcqRel);
                // Route while the new root is still locked: once nr is
                // released, another writer can descend through it and
                // split the sibling, mutating nr's separators — reading
                // them unlocked here would misroute this insert.
                let idx = nr.child_index(key);
                let target = nr.child(idx);
                if target == root {
                    node = root;
                } else {
                    // SAFETY: the sibling is reachable only through nr,
                    // whose lock we still hold.
                    unsafe { &*target }.lock();
                    root_ref.unlock_clean(); // split already bumped it
                    node = target;
                }
                nr.unlock_clean(); // split already bumped it
            }
            return self.insert_descend(node, key, row, guard);
        }
    }

    /// Descend from `node` (write-locked by the caller), splitting full
    /// children preemptively, and insert into the target leaf.
    fn insert_descend(
        &self,
        mut node: *mut Node,
        key: Key,
        row: RowIdx,
        guard: Option<u64>,
    ) -> Result<GuardedInsert, DbError> {
        // SAFETY throughout: `node` is locked by us; children are locked
        // before the parent is released (lock coupling).
        loop {
            let n = unsafe { &*node };
            if n.is_leaf {
                let pos = n.leaf_lower_bound(key);
                let count = n.len();
                if pos < count && n.key(pos) == key {
                    n.unlock_clean();
                    return Err(DbError::DuplicateKey {
                        table: self.table,
                        key,
                    });
                }
                if let Some(tag) = guard {
                    // Atomic with publication (we hold the leaf): a scan
                    // tag above ours means a later-timestamp range scan
                    // already covered this gap — inserting would plant a
                    // phantom behind it.
                    if n.scan_rts.load(Ordering::Acquire) > tag {
                        n.unlock_clean();
                        return Ok(GuardedInsert::GapProtected);
                    }
                }
                debug_assert!(count < FANOUT);
                // The version readers could last have validated against
                // (we hold the lock; unlock_modified publishes prev + 1).
                let prev_version = n.version.load(Ordering::Relaxed) & !LOCKED;
                let mut i = count;
                while i > pos {
                    n.keys[i].store(n.key(i - 1), Ordering::Relaxed);
                    n.slots[i].store(n.slot(i - 1), Ordering::Relaxed);
                    i -= 1;
                }
                n.keys[pos].store(key, Ordering::Relaxed);
                n.slots[pos].store(row, Ordering::Relaxed);
                n.count.store(count as u64 + 1, Ordering::Relaxed);
                n.unlock_modified();
                self.len.fetch_add(1, Ordering::AcqRel);
                return Ok(GuardedInsert::Inserted {
                    leaf: LeafId(node as usize),
                    prev_version,
                });
            }
            let idx = n.child_index(key);
            let mut child = n.child(idx);
            let c = unsafe { &*child };
            c.lock();
            if c.len() == FANOUT {
                self.split_child(n, idx);
                // The split may have moved `key`'s home to the new sibling.
                // Versions of both parent and child were already bumped by
                // the split (mark_modified), so clean unlocks suffice.
                let new_idx = n.child_index(key);
                if new_idx != idx {
                    let sibling = n.child(new_idx);
                    // SAFETY: sibling was created under the parent's lock
                    // and is only reachable through it.
                    unsafe { &*sibling }.lock();
                    c.unlock_clean();
                    child = sibling;
                }
            }
            n.unlock_clean();
            node = child;
        }
    }

    /// Split the full child at `idx` of `parent`. Caller holds the locks
    /// on `parent` and on that child; both remain locked on return. The
    /// new sibling is fully constructed before it becomes reachable.
    fn split_child(&self, parent: &Node, idx: usize) {
        let child_ptr = parent.child(idx);
        // SAFETY: caller holds the child's lock.
        let child = unsafe { &*child_ptr };
        debug_assert_eq!(child.len(), FANOUT);
        let sib_ptr = self.alloc(child.is_leaf);
        // SAFETY: sibling is unreachable until linked below.
        let sib = unsafe { &*sib_ptr };

        let sep;
        if child.is_leaf {
            let m = FANOUT / 2;
            for (j, i) in (m..FANOUT).enumerate() {
                sib.keys[j].store(child.key(i), Ordering::Relaxed);
                sib.slots[j].store(child.slot(i), Ordering::Relaxed);
            }
            sib.count.store((FANOUT - m) as u64, Ordering::Relaxed);
            sib.next
                .store(child.next.load(Ordering::Relaxed), Ordering::Relaxed);
            // The gap tags cover key ranges that are now shared between the
            // two leaves; inherit them so no protection is lost.
            sib.scan_rts
                .store(child.scan_rts.load(Ordering::Relaxed), Ordering::Relaxed);
            sib.del_wts
                .store(child.del_wts.load(Ordering::Relaxed), Ordering::Relaxed);
            sep = sib.key(0);
            // Publish the sibling in the chain, then shrink the child.
            // Readers holding the child's pre-lock version will fail their
            // re-check and retry; new readers spin on the child's lock.
            child.next.store(sib_ptr, Ordering::Release);
            child.count.store(m as u64, Ordering::Relaxed);
        } else {
            let m = FANOUT / 2;
            sep = child.key(m);
            for (j, i) in ((m + 1)..FANOUT).enumerate() {
                sib.keys[j].store(child.key(i), Ordering::Relaxed);
            }
            for (j, i) in ((m + 1)..=FANOUT).enumerate() {
                sib.slots[j].store(child.slot(i), Ordering::Relaxed);
            }
            sib.count.store((FANOUT - m - 1) as u64, Ordering::Relaxed);
            child.count.store(m as u64, Ordering::Relaxed);
        }

        // Shift the parent's separators/children right and link the sibling.
        let pcount = parent.len();
        debug_assert!(pcount < FANOUT);
        let mut i = pcount;
        while i > idx {
            parent.keys[i].store(parent.key(i - 1), Ordering::Relaxed);
            parent.slots[i + 1].store(parent.slot(i), Ordering::Relaxed);
            i -= 1;
        }
        parent.keys[idx].store(sep, Ordering::Relaxed);
        parent.slots[idx + 1].store(sib_ptr as u64, Ordering::Relaxed);
        parent.count.store(pcount as u64 + 1, Ordering::Relaxed);

        // Invalidate every optimistic reader that captured a pre-split
        // version of either node, no matter how they are later unlocked.
        parent.mark_modified();
        child.mark_modified();
    }

    /// Remove `key`, returning its row and the leaf it was removed from.
    /// Leaves may become underfull or empty; the structure never shrinks.
    pub fn remove(&self, key: Key) -> Option<(RowIdx, LeafId)> {
        self.remove_inner(key, None)
    }

    /// [`BPlusTree::remove`], additionally raising the leaf's `del_wts`
    /// tag to `tag` **under the leaf's write lock** — atomic with the
    /// removal, so any scanner that observes the post-removal leaf state
    /// (its version re-validation spins past our lock) also observes the
    /// tag. This closes the timestamp schemes' window between "withdraw
    /// the key" and "warn older scans".
    pub fn remove_tagged(&self, key: Key, tag: u64) -> Option<(RowIdx, LeafId)> {
        self.remove_inner(key, Some(tag))
    }

    fn remove_inner(&self, key: Key, tag: Option<u64>) -> Option<(RowIdx, LeafId)> {
        loop {
            let root = self.root.load(Ordering::Acquire);
            // SAFETY: nodes live as long as the tree.
            let root_ref = unsafe { &*root };
            root_ref.lock();
            if self.root.load(Ordering::Acquire) != root {
                root_ref.unlock_clean();
                continue;
            }
            // Latch-crab to the leaf.
            let mut node = root;
            loop {
                let n = unsafe { &*node };
                if n.is_leaf {
                    let pos = n.leaf_lower_bound(key);
                    let count = n.len();
                    if pos >= count || n.key(pos) != key {
                        n.unlock_clean();
                        return None;
                    }
                    let row = n.slot(pos);
                    if let Some(t) = tag {
                        n.del_wts.fetch_max(t, Ordering::AcqRel);
                    }
                    for i in pos..count - 1 {
                        n.keys[i].store(n.key(i + 1), Ordering::Relaxed);
                        n.slots[i].store(n.slot(i + 1), Ordering::Relaxed);
                    }
                    n.count.store(count as u64 - 1, Ordering::Relaxed);
                    n.unlock_modified();
                    self.len.fetch_sub(1, Ordering::AcqRel);
                    return Some((row, LeafId(node as usize)));
                }
                let child = n.child(n.child_index(key));
                // SAFETY: child pointer read under the parent's lock.
                unsafe { &*child }.lock();
                n.unlock_clean();
                node = child;
            }
        }
    }

    // ------------------------------------------------------------ readers

    /// Optimistic descent to the leaf that owns `key`'s position. Returns
    /// the leaf and its validated version, or `None` on a version conflict
    /// (caller restarts).
    fn try_find_leaf(&self, key: Key) -> Option<(*const Node, u64)> {
        let mut node = self.root.load(Ordering::Acquire) as *const Node;
        // SAFETY: nodes live as long as the tree.
        let mut n = unsafe { &*node };
        let mut v = n.stable_version();
        // A root grow shrinks the old root *before* publishing the new
        // one; a stable version captured after the shrink no longer covers
        // the whole key space, so re-check that this is still the root.
        if !std::ptr::eq(self.root.load(Ordering::Acquire), node) {
            return None;
        }
        loop {
            if n.is_leaf {
                return Some((node, v));
            }
            let idx = n.child_index(key);
            let child = n.child(idx) as *const Node;
            // Validate before trusting the child pointer.
            // Seqlock fence: keep the preceding relaxed field reads from
            // sinking below this validating load (see occ::stable_copy).
            std::sync::atomic::fence(Ordering::Acquire);
            if n.version.load(Ordering::Acquire) != v {
                return None;
            }
            // SAFETY: validated pointer; nodes are never freed.
            let c = unsafe { &*child };
            let cv = c.stable_version();
            // Second parent check (the OLC readUnlock step): if the parent
            // is untouched *after* the child's version was captured, the
            // routing decision and `cv` describe the same moment — a child
            // split cannot have slipped in between, because splits bump
            // the parent under its lock before either node is released.
            // Seqlock fence: keep the preceding relaxed field reads from
            // sinking below this validating load (see occ::stable_copy).
            std::sync::atomic::fence(Ordering::Acquire);
            if n.version.load(Ordering::Acquire) != v {
                return None;
            }
            node = child;
            n = c;
            v = cv;
        }
    }

    /// Point lookup.
    pub fn get(&self, key: Key) -> Option<RowIdx> {
        loop {
            let Some((leaf, v)) = self.try_find_leaf(key) else {
                continue;
            };
            // SAFETY: see try_find_leaf.
            let n = unsafe { &*leaf };
            let pos = n.leaf_lower_bound(key);
            let hit = if pos < n.len() && n.key(pos) == key {
                Some(n.slot(pos))
            } else {
                None
            };
            // Seqlock fence: keep the preceding relaxed field reads from
            // sinking below this validating load (see occ::stable_copy).
            std::sync::atomic::fence(Ordering::Acquire);
            if n.version.load(Ordering::Acquire) == v {
                return hit;
            }
        }
    }

    /// Collect every entry with `low <= key <= high`, key-ascending,
    /// together with the observed leaf versions (phantom validation) —
    /// including leaves that intersect the range but hold no matching key.
    pub fn scan(&self, low: Key, high: Key) -> ScanResult {
        let mut out = ScanResult::default();
        if low > high {
            return out;
        }
        'restart: loop {
            out.entries.clear();
            out.leaves.clear();
            let Some((mut leaf, mut v)) = self.try_find_leaf(low) else {
                out.retries += 1;
                continue 'restart;
            };
            // `cursor` dedups entries that a concurrent split may have
            // copied into a sibling we will visit next.
            let mut cursor = low;
            loop {
                // SAFETY: see try_find_leaf.
                let n = unsafe { &*leaf };
                let count = n.len();
                let mut local: Vec<(Key, RowIdx)> = Vec::new();
                let mut exhausted = false;
                for i in 0..count {
                    let k = n.key(i);
                    if k < cursor {
                        continue;
                    }
                    if k > high {
                        exhausted = true;
                        break;
                    }
                    local.push((k, n.slot(i)));
                }
                let next = n.next.load(Ordering::Acquire) as *const Node;
                // Seqlock fence: keep the preceding relaxed field reads from
                // sinking below this validating load (see occ::stable_copy).
                std::sync::atomic::fence(Ordering::Acquire);
                if n.version.load(Ordering::Acquire) != v {
                    out.retries += 1;
                    // Re-stabilize just this leaf; keys only move rightward
                    // (splits), so entries below `cursor` are already safe.
                    v = n.stable_version();
                    continue;
                }
                out.leaves.push((LeafId(leaf as usize), v));
                if let Some(&(k, _)) = local.last() {
                    match k.checked_add(1) {
                        Some(c) => cursor = c,
                        None => {
                            // key::MAX emitted: nothing can lie beyond it.
                            out.entries.append(&mut local);
                            return out;
                        }
                    }
                }
                out.entries.append(&mut local);
                if exhausted || next.is_null() {
                    return out;
                }
                // SAFETY: the chain pointer was validated above.
                let nn = unsafe { &*next };
                let nv = nn.stable_version();
                // A leaf whose smallest key exceeds `high` still bounds the
                // scan's upper gap; record it and stop.
                leaf = next;
                v = nv;
                let first = if nn.len() > 0 { Some(nn.key(0)) } else { None };
                // Seqlock fence: keep the preceding relaxed field reads from
                // sinking below this validating load (see occ::stable_copy).
                std::sync::atomic::fence(Ordering::Acquire);
                if nn.version.load(Ordering::Acquire) == v {
                    if let Some(f) = first {
                        if f > high {
                            out.leaves.push((LeafId(leaf as usize), v));
                            return out;
                        }
                    }
                }
            }
        }
    }

    /// First entry with `key >= from` (inclusive successor).
    pub fn successor_inclusive(&self, from: Key) -> Option<(Key, RowIdx)> {
        loop {
            let Some((mut leaf, mut v)) = self.try_find_leaf(from) else {
                continue;
            };
            loop {
                // SAFETY: see try_find_leaf.
                let n = unsafe { &*leaf };
                let count = n.len();
                let mut hit = None;
                for i in 0..count {
                    let k = n.key(i);
                    if k >= from {
                        hit = Some((k, n.slot(i)));
                        break;
                    }
                }
                let next = n.next.load(Ordering::Acquire) as *const Node;
                // Seqlock fence: keep the preceding relaxed field reads from
                // sinking below this validating load (see occ::stable_copy).
                std::sync::atomic::fence(Ordering::Acquire);
                if n.version.load(Ordering::Acquire) != v {
                    v = n.stable_version();
                    continue;
                }
                if hit.is_some() {
                    return hit;
                }
                if next.is_null() {
                    return None;
                }
                // SAFETY: validated chain pointer.
                let nn = unsafe { &*next };
                v = nn.stable_version();
                leaf = next;
            }
        }
    }
}

impl Drop for BPlusTree {
    fn drop(&mut self) {
        for &n in self.nodes.lock().iter() {
            // SAFETY: exclusive access in Drop; each pointer was allocated
            // by Box::into_raw exactly once and never freed.
            unsafe { drop(Box::from_raw(n)) };
        }
    }
}

impl std::fmt::Debug for BPlusTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let h = self.health();
        f.debug_struct("BPlusTree")
            .field("table", &self.table)
            .field("len", &h.len)
            .field("height", &h.height)
            .field("nodes", &h.nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove_roundtrip() {
        let t = BPlusTree::new(0);
        for k in 0..200u64 {
            t.insert(k * 3, k).unwrap();
        }
        assert_eq!(t.len(), 200);
        assert_eq!(t.get(33), Some(11));
        assert_eq!(t.get(34), None);
        let (row, _leaf) = t.remove(33).unwrap();
        assert_eq!(row, 11);
        assert_eq!(t.get(33), None);
        assert!(t.remove(33).is_none());
        assert_eq!(t.len(), 199);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let t = BPlusTree::new(7);
        t.insert(5, 50).unwrap();
        let err = t.insert(5, 51).unwrap_err();
        assert_eq!(err, DbError::DuplicateKey { table: 7, key: 5 });
        assert_eq!(t.get(5), Some(50));
    }

    #[test]
    fn scan_returns_sorted_range() {
        let t = BPlusTree::new(0);
        for k in (0..500u64).rev() {
            t.insert(k * 2, k).unwrap();
        }
        let r = t.scan(100, 140);
        let keys: Vec<u64> = r.entries.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, (50..=70).map(|k| k * 2).collect::<Vec<_>>());
        assert!(!r.leaves.is_empty());
        // Empty range still observes the covering leaf.
        let empty = t.scan(101, 101);
        assert!(empty.entries.is_empty());
        assert!(!empty.leaves.is_empty());
    }

    #[test]
    fn scan_leaf_versions_change_on_insert() {
        let t = BPlusTree::new(0);
        for k in 0..64u64 {
            t.insert(k * 10, k).unwrap();
        }
        let before = t.scan(0, 639);
        t.insert(5, 999).unwrap();
        let changed = before
            .leaves
            .iter()
            .any(|&(leaf, v)| t.leaf_version(leaf) != v);
        assert!(changed, "an insert into the range must bump a leaf version");
    }

    #[test]
    fn successor_walks_across_leaves() {
        let t = BPlusTree::new(0);
        for k in 0..100u64 {
            t.insert(k * 5, k).unwrap();
        }
        assert_eq!(t.successor_inclusive(0), Some((0, 0)));
        assert_eq!(t.successor_inclusive(11), Some((15, 3)));
        assert_eq!(t.successor_inclusive(495), Some((495, 99)));
        assert_eq!(t.successor_inclusive(496), None);
    }

    #[test]
    fn leaf_tags_are_monotonic() {
        let t = BPlusTree::new(0);
        t.insert(1, 1).unwrap();
        let r = t.scan(0, 10);
        let (leaf, _) = r.leaves[0];
        t.leaf_bump_scan_rts(leaf, 10);
        t.leaf_bump_scan_rts(leaf, 5);
        assert_eq!(t.leaf_scan_rts(leaf), 10);
        t.leaf_bump_del_wts(leaf, 3);
        assert_eq!(t.leaf_del_wts(leaf), 3);
    }

    #[test]
    fn height_grows_with_inserts() {
        let t = BPlusTree::new(0);
        assert_eq!(t.health().height, 1);
        for k in 0..10_000u64 {
            t.insert(k, k).unwrap();
        }
        let h = t.health();
        assert!(h.height >= 3, "height {}", h.height);
        assert_eq!(h.len, 10_000);
        // Full scan sees everything in order.
        let r = t.scan(0, u64::MAX);
        assert_eq!(r.entries.len(), 10_000);
        assert!(r.entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = Arc::new(BPlusTree::new(0));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    let k = i * 4 + w;
                    t.insert(k, k * 2).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 20_000);
        let r = t.scan(0, u64::MAX);
        assert_eq!(r.entries.len(), 20_000);
        assert!(r.entries.windows(2).all(|w| w[0].0 < w[1].0));
        for &(k, v) in &r.entries {
            assert_eq!(v, k * 2);
        }
    }

    #[test]
    fn concurrent_scans_during_inserts_stay_sorted() {
        let t = Arc::new(BPlusTree::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) && k < 30_000 {
                    t.insert(k, k).unwrap();
                    k += 1;
                }
                k
            })
        };
        let mut readers = Vec::new();
        for _ in 0..2 {
            let t = Arc::clone(&t);
            readers.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let r = t.scan(0, u64::MAX);
                    assert!(
                        r.entries.windows(2).all(|w| w[0].0 < w[1].0),
                        "scan must stay sorted and duplicate-free"
                    );
                    for &(k, v) in &r.entries {
                        assert_eq!(k, v);
                    }
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let inserted = writer.join().unwrap();
        let r = t.scan(0, u64::MAX);
        assert_eq!(r.entries.len() as u64, inserted);
    }
}
