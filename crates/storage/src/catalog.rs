//! Table schemas with fixed row layouts.
//!
//! The engine stores rows as contiguous byte arrays; a [`Schema`] maps
//! column indexes to byte offsets. Columns are fixed-width (YCSB uses ten
//! 100-byte string fields; TPC-C's variable fields are stored at their
//! maximum width, as DBx1000 does).

use abyss_common::{DbError, TableId};

/// A single fixed-width column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Width in bytes.
    pub width: usize,
}

impl ColumnDef {
    /// A new column definition.
    pub fn new(name: impl Into<String>, width: usize) -> Self {
        Self {
            name: name.into(),
            width,
        }
    }

    /// A `u64` column.
    pub fn u64(name: impl Into<String>) -> Self {
        Self::new(name, 8)
    }
}

/// A fixed row layout: column widths plus precomputed offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    offsets: Vec<usize>,
    row_size: usize,
}

impl Schema {
    /// Build a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        let mut offsets = Vec::with_capacity(columns.len());
        let mut off = 0;
        for c in &columns {
            offsets.push(off);
            off += c.width;
        }
        Self {
            columns,
            offsets,
            row_size: off,
        }
    }

    /// Convenience: a YCSB-style schema of `n` data columns of `width` bytes
    /// (plus an 8-byte primary-key column 0).
    pub fn key_plus_payload(n: usize, width: usize) -> Self {
        let mut cols = vec![ColumnDef::u64("key")];
        for i in 0..n {
            cols.push(ColumnDef::new(format!("f{i}"), width));
        }
        Self::new(cols)
    }

    /// Total row size in bytes.
    pub fn row_size(&self) -> usize {
        self.row_size
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Byte offset of column `col`.
    pub fn offset(&self, col: usize) -> usize {
        self.offsets[col]
    }

    /// Width of column `col`.
    pub fn width(&self, col: usize) -> usize {
        self.columns[col].width
    }

    /// Byte range of column `col`, checked.
    pub fn column_range(&self, col: usize) -> Result<std::ops::Range<usize>, DbError> {
        if col >= self.columns.len() {
            return Err(DbError::SchemaViolation(format!(
                "column {col} out of range ({} columns)",
                self.columns.len()
            )));
        }
        let start = self.offsets[col];
        Ok(start..start + self.columns[col].width)
    }

    /// Column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }
}

/// A table definition: id, name, schema, capacity.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table id — index into the catalog.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Row layout.
    pub schema: Schema,
    /// Maximum number of rows the arena will hold (loads + inserts).
    pub capacity: u64,
    /// Maintain an ordered index ([`crate::btree::BPlusTree`]) alongside
    /// the hash index, enabling range scans on this table.
    pub ordered: bool,
}

/// An ordered collection of table definitions.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table; returns its id.
    pub fn add_table(&mut self, name: impl Into<String>, schema: Schema, capacity: u64) -> TableId {
        let id = self.tables.len() as TableId;
        self.tables.push(TableDef {
            id,
            name: name.into(),
            schema,
            capacity,
            ordered: false,
        });
        id
    }

    /// Add a table that also maintains an ordered (B+-tree) index, making
    /// it range-scannable; returns its id.
    pub fn add_ordered_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        capacity: u64,
    ) -> TableId {
        let id = self.add_table(name, schema, capacity);
        self.tables[id as usize].ordered = true;
        id
    }

    /// Look up a table definition.
    pub fn table(&self, id: TableId) -> Result<&TableDef, DbError> {
        self.tables.get(id as usize).ok_or(DbError::NoSuchTable(id))
    }

    /// Find a table id by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// All table definitions in id order.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_offsets_are_cumulative() {
        let s = Schema::new(vec![
            ColumnDef::u64("id"),
            ColumnDef::new("name", 16),
            ColumnDef::new("flag", 1),
        ]);
        assert_eq!(s.row_size(), 25);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 8);
        assert_eq!(s.offset(2), 24);
        assert_eq!(s.width(1), 16);
    }

    #[test]
    fn ycsb_style_schema() {
        // Paper: 1 PK column + 10 columns of 100 bytes each.
        let s = Schema::key_plus_payload(10, 100);
        assert_eq!(s.column_count(), 11);
        assert_eq!(s.row_size(), 8 + 1000);
    }

    #[test]
    fn column_range_checks_bounds() {
        let s = Schema::new(vec![ColumnDef::u64("a")]);
        assert_eq!(s.column_range(0).unwrap(), 0..8);
        assert!(s.column_range(1).is_err());
    }

    #[test]
    fn catalog_lookup() {
        let mut c = Catalog::new();
        let t0 = c.add_table("warehouse", Schema::key_plus_payload(1, 8), 10);
        let t1 = c.add_table("district", Schema::key_plus_payload(2, 8), 100);
        assert_eq!(t0, 0);
        assert_eq!(t1, 1);
        assert_eq!(c.table(t1).unwrap().name, "district");
        assert!(c.table(9).is_err());
        assert_eq!(c.table_by_name("warehouse").unwrap().id, t0);
        assert_eq!(c.len(), 2);
    }
}
