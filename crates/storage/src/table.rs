//! Fixed-capacity row arenas.
//!
//! A [`Table`] owns one contiguous allocation of `capacity × row_size`
//! bytes. Row slots are handed out by a lock-free bump counter (inserts
//! never move existing rows, so `RowIdx` values stay stable — the per-tuple
//! concurrency-control metadata in `abyss-core` is keyed by them).
//!
//! # Safety model
//!
//! Row payloads are accessed through raw pointers with *no* internal
//! synchronization; exclusion is the concurrency-control scheme's job —
//! exactly as in the paper's DBMS, where tuple data is protected by the
//! scheme under test, not by the storage layer. The unsafe surface is
//! confined to [`Table::row`] / [`Table::row_mut`], whose contracts state
//! the CC obligation.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use abyss_common::{DbError, RowIdx};

use crate::catalog::Schema;

/// A fixed-capacity, row-oriented in-memory table.
pub struct Table {
    schema: Schema,
    capacity: u64,
    row_size: usize,
    next_slot: AtomicU64,
    data: Box<[UnsafeCell<u8>]>,
}

// SAFETY: concurrent access to row bytes is mediated by the concurrency
// control layer above (see module docs); the bump counter is atomic.
unsafe impl Sync for Table {}
unsafe impl Send for Table {}

impl Table {
    /// Allocate an arena for `capacity` rows of `schema`.
    pub fn new(schema: Schema, capacity: u64) -> Self {
        let row_size = schema.row_size();
        let bytes = (capacity as usize) * row_size;
        // UnsafeCell<u8> is repr-transparent over u8, so a zeroed Vec works.
        let mut v = Vec::with_capacity(bytes);
        v.resize_with(bytes, || UnsafeCell::new(0));
        Self {
            schema,
            capacity,
            row_size,
            next_slot: AtomicU64::new(0),
            data: v.into_boxed_slice(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Bytes per row.
    pub fn row_size(&self) -> usize {
        self.row_size
    }

    /// Maximum number of rows.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Rows allocated so far.
    pub fn len(&self) -> u64 {
        self.next_slot.load(Ordering::Acquire).min(self.capacity)
    }

    /// True if no rows are allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve a fresh row slot (lock-free). The slot's bytes are zeroed.
    pub fn allocate_row(&self) -> Result<RowIdx, DbError> {
        let idx = self.next_slot.fetch_add(1, Ordering::AcqRel);
        if idx >= self.capacity {
            // Undo so len() stays meaningful under pressure.
            self.next_slot.fetch_sub(1, Ordering::AcqRel);
            return Err(DbError::SchemaViolation(format!(
                "table capacity exhausted ({} rows)",
                self.capacity
            )));
        }
        Ok(idx)
    }

    #[inline]
    fn check(&self, idx: RowIdx) {
        debug_assert!(
            idx < self.next_slot.load(Ordering::Acquire),
            "row index {idx} beyond allocated rows"
        );
    }

    /// Read-borrow row `idx`.
    ///
    /// # Safety
    /// The caller must guarantee — via the concurrency-control scheme —
    /// that no thread mutates this row for the lifetime of the returned
    /// slice.
    #[inline]
    pub unsafe fn row(&self, idx: RowIdx) -> &[u8] {
        self.check(idx);
        let start = (idx as usize) * self.row_size;
        std::slice::from_raw_parts(self.data[start].get(), self.row_size)
    }

    /// Mutably borrow row `idx`.
    ///
    /// # Safety
    /// The caller must guarantee exclusive access to this row (a held write
    /// lock, a validated OCC write phase, an owned partition, ...).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, idx: RowIdx) -> &mut [u8] {
        self.check(idx);
        let start = (idx as usize) * self.row_size;
        std::slice::from_raw_parts_mut(self.data[start].get(), self.row_size)
    }

    /// Copy row `idx` into `buf` (the TIMESTAMP/OCC "read a local copy"
    /// path, §5.1).
    ///
    /// # Safety
    /// Same as [`Table::row`].
    #[inline]
    pub unsafe fn copy_row_into(&self, idx: RowIdx, buf: &mut [u8]) {
        let src = self.row(idx);
        buf[..self.row_size].copy_from_slice(src);
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("rows", &self.len())
            .field("capacity", &self.capacity)
            .field("row_size", &self.row_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Schema;
    use crate::row;

    fn small_table() -> Table {
        Table::new(Schema::key_plus_payload(2, 4), 8)
    }

    #[test]
    fn allocate_until_full() {
        let t = small_table();
        for i in 0..8 {
            assert_eq!(t.allocate_row().unwrap(), i);
        }
        assert!(t.allocate_row().is_err());
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn rows_are_zeroed_and_writable() {
        let t = small_table();
        let idx = t.allocate_row().unwrap();
        unsafe {
            assert!(t.row(idx).iter().all(|&b| b == 0));
            let r = t.row_mut(idx);
            row::set_u64(t.schema(), r, 0, 99);
            assert_eq!(row::get_u64(t.schema(), t.row(idx), 0), 99);
        }
    }

    #[test]
    fn copy_row_matches_source() {
        let t = small_table();
        let idx = t.allocate_row().unwrap();
        unsafe {
            let r = t.row_mut(idx);
            r.fill(0x5A);
            let mut buf = vec![0u8; t.row_size()];
            t.copy_row_into(idx, &mut buf);
            assert_eq!(&buf[..], t.row(idx));
        }
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        use std::sync::Arc;
        let t = Arc::new(Table::new(Schema::key_plus_payload(1, 4), 4000));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..1000 {
                    got.push(t.allocate_row().unwrap());
                }
                got
            }));
        }
        let mut all: Vec<RowIdx> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "row indexes must be unique");
    }
}
