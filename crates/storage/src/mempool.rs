//! Per-thread memory pools with dynamic resizing — the paper's custom
//! `malloc` (§4.1).
//!
//! The paper found the global allocator to be a first-order bottleneck even
//! for read-only workloads (TIMESTAMP copies every tuple it reads) and
//! replaced it with per-thread pools whose size adapts to the workload.
//! [`MemPool`] reproduces that design: each worker owns one pool; blocks
//! are size-classed; freeing returns a block to its class's free list; when
//! a class misses repeatedly, its refill batch doubles (the "automatically
//! resizes the pools based on the workload" behaviour).
//!
//! The pool is deliberately *not* `Sync` — one pool per worker, zero
//! cross-thread coordination, exactly as in the paper.
//!
//! Underneath the per-worker pools sits a **per-NUMA-node arena** layer:
//! when a pool drops (worker exit, service resize), its cached blocks are
//! parked in the arena of the node the pool was created on, and a later
//! pool on the *same* node refills from that arena before touching the
//! global allocator. Refills therefore recycle node-local memory instead
//! of pulling freshly faulted (possibly remote-interleaved) pages across
//! the interconnect. On single-node hosts the topology detection
//! (`abyss_common::affinity`) collapses to one arena and the layer is a
//! plain process-wide recycler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

/// Smallest block class, bytes (everything is rounded up to a class).
const MIN_CLASS: usize = 64;
/// Number of size classes: 64, 128, ..., 64 << (NUM_CLASSES-1) = 2 MiB.
const NUM_CLASSES: usize = 16;
/// Initial refill batch per class.
const INITIAL_BATCH: usize = 8;
/// Blocks a node arena retains per class before overflow goes back to the
/// global allocator — a hoard cap, not a working-set bound.
const ARENA_CAP: usize = 4096;

/// Process-wide count of pool blocks alive anywhere — cached in a free
/// list, borrowed as a [`PoolBlock`], or in flight. Touched only on cold
/// paths (refill, block drop, pool drop), never per alloc/free, so the
/// gauge costs the hot path nothing.
static LIVE_BLOCKS: AtomicU64 = AtomicU64::new(0);

/// The process-wide mempool live-block gauge (see [`MemPool`] — one pool
/// per worker, so a global counter is the only cross-pool view).
pub fn live_blocks() -> u64 {
    LIVE_BLOCKS.load(Ordering::Relaxed)
}

/// A block borrowed from a [`MemPool`]. Return it with [`MemPool::free`];
/// dropping it without freeing simply releases the memory to the global
/// allocator (correct, but forfeits reuse).
#[derive(Debug)]
pub struct PoolBlock {
    buf: Box<[u8]>,
    class: usize,
}

impl PoolBlock {
    /// The usable bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// The usable bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Capacity of the block (the rounded-up class size).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl std::ops::Deref for PoolBlock {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for PoolBlock {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PoolBlock {
    fn drop(&mut self) {
        // Only blocks released to the global allocator land here:
        // `MemPool::free` disassembles the wrapper without running Drop,
        // keeping its blocks on the gauge until the pool itself drops.
        LIVE_BLOCKS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Counters exposed for the allocator ablation benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a free list.
    pub hits: u64,
    /// Allocations that had to refill (arena or global allocator).
    pub misses: u64,
    /// Total blocks brought into the pool by refills, from the node arena
    /// or the global allocator.
    pub refilled_blocks: u64,
    /// Refilled blocks that were recycled out of the node arena (the
    /// remainder were freshly allocated).
    pub arena_hits: u64,
    /// Blocks currently cached across all free lists.
    pub cached: u64,
}

/// One NUMA node's parked-block arena: blocks dropped by pools on this
/// node, awaiting reuse by a later pool on the same node. Cold-path only —
/// the per-pool free lists absorb the steady state; the arena lock is
/// taken once per refill / pool drop.
struct NodeArena {
    free: [Mutex<Vec<Box<[u8]>>>; NUM_CLASSES],
}

impl NodeArena {
    fn new() -> Self {
        Self {
            free: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Pop up to `max` blocks of `class`.
    fn take(&self, class: usize, max: usize) -> Vec<Box<[u8]>> {
        let mut list = self.free[class].lock();
        let start = list.len().saturating_sub(max);
        list.split_off(start)
    }

    /// Park blocks of `class`; overflow beyond [`ARENA_CAP`] is released
    /// to the global allocator (dropped — the gauge already excludes
    /// arena-bound blocks, see [`MemPool`]'s `Drop`).
    fn put(&self, class: usize, bufs: impl Iterator<Item = Box<[u8]>>) {
        let mut list = self.free[class].lock();
        for buf in bufs {
            if list.len() < ARENA_CAP {
                list.push(buf);
            }
        }
    }

    /// Blocks currently parked for `class`.
    fn depth(&self, class: usize) -> usize {
        self.free[class].lock().len()
    }
}

/// The arena for `node` (clamped to the detected topology).
fn node_arena(node: usize) -> &'static NodeArena {
    static ARENAS: OnceLock<Vec<NodeArena>> = OnceLock::new();
    let arenas = ARENAS.get_or_init(|| {
        (0..abyss_common::numa_topology().nodes())
            .map(|_| NodeArena::new())
            .collect()
    });
    &arenas[node.min(arenas.len() - 1)]
}

/// Blocks parked in `node`'s arena for the class serving `size`-byte
/// allocations (bench/test introspection).
pub fn arena_depth(node: usize, size: usize) -> usize {
    node_arena(node).depth(MemPool::class_for(size))
}

/// A per-worker block pool with dynamically resized refill batches,
/// refilling from its NUMA node's arena before the global allocator.
#[derive(Debug)]
pub struct MemPool {
    free: [Vec<Box<[u8]>>; NUM_CLASSES],
    batch: [usize; NUM_CLASSES],
    stats: PoolStats,
    /// The NUMA node this pool recycles through (fixed at construction —
    /// workers are expected to be pinned, or at least sticky).
    node: usize,
}

impl Default for MemPool {
    fn default() -> Self {
        Self::new()
    }
}

impl MemPool {
    /// An empty pool on the calling thread's current NUMA node; memory is
    /// fetched lazily on first use.
    pub fn new() -> Self {
        Self::new_on_node(abyss_common::current_node())
    }

    /// An empty pool recycling through `node`'s arena (clamped to the
    /// detected topology). The benches use this to contrast node-local
    /// against cross-node refills; the engine uses [`MemPool::new`].
    pub fn new_on_node(node: usize) -> Self {
        Self {
            free: std::array::from_fn(|_| Vec::new()),
            batch: [INITIAL_BATCH; NUM_CLASSES],
            stats: PoolStats::default(),
            node: node.min(abyss_common::numa_topology().nodes() - 1),
        }
    }

    /// The NUMA node this pool recycles through.
    pub fn node(&self) -> usize {
        self.node
    }

    fn class_for(size: usize) -> usize {
        let rounded = size.max(MIN_CLASS).next_power_of_two();
        let class = rounded.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize;
        assert!(
            class < NUM_CLASSES,
            "allocation of {size} bytes exceeds largest pool class"
        );
        class
    }

    /// Size in bytes of blocks in `class`.
    fn class_size(class: usize) -> usize {
        MIN_CLASS << class
    }

    /// Allocate a zero-initialized block of at least `size` bytes.
    pub fn alloc(&mut self, size: usize) -> PoolBlock {
        let class = Self::class_for(size);
        if let Some(mut buf) = self.free[class].pop() {
            // Recycled blocks come back with their previous contents
            // (`free` defers the cost); rezero here so the documented
            // zero-init contract holds — a shorter row reusing a larger
            // block must not expose a previous row's bytes through
            // `PoolBlock::as_slice`.
            buf.fill(0);
            self.stats.hits += 1;
            self.stats.cached -= 1;
            return PoolBlock { buf, class };
        }
        self.refill(class)
    }

    /// Allocate a block of at least `size` bytes **without** the zero-init
    /// guarantee: a recycled block keeps its previous contents. Strictly
    /// for callers that overwrite every byte they will ever read (full-row
    /// copies on hot paths); anything that exposes unwritten bytes must
    /// use [`MemPool::alloc`].
    pub fn alloc_uninit(&mut self, size: usize) -> PoolBlock {
        let class = Self::class_for(size);
        if let Some(buf) = self.free[class].pop() {
            self.stats.hits += 1;
            self.stats.cached -= 1;
            return PoolBlock { buf, class };
        }
        self.refill(class)
    }

    /// Miss path shared by both allocators: fetch a doubling batch (the
    /// paper's dynamic pool resizing), recycled out of this pool's node
    /// arena first, topped up from the global allocator. The block handed
    /// back to the caller is always zeroed.
    fn refill(&mut self, class: usize) -> PoolBlock {
        self.stats.misses += 1;
        let n = self.batch[class];
        self.batch[class] = (n * 2).min(4096);
        let bytes = Self::class_size(class);
        let recycled = node_arena(self.node).take(class, n);
        let reused = recycled.len();
        // Arena blocks re-enter the gauge here (they left it when their
        // previous pool dropped); fresh blocks enter it for the first time.
        LIVE_BLOCKS.fetch_add(n as u64, Ordering::Relaxed);
        // Recycled blocks keep their stale contents: the pool free lists
        // are lazily rezeroed on the alloc hit path already.
        self.stats.cached += reused as u64;
        self.free[class].extend(recycled);
        self.stats.arena_hits += reused as u64;
        self.stats.refilled_blocks += n as u64;
        let fresh = n - reused;
        for _ in 0..fresh.saturating_sub(1) {
            self.free[class].push(vec![0u8; bytes].into_boxed_slice());
            self.stats.cached += 1;
        }
        if fresh > 0 {
            return PoolBlock {
                buf: vec![0u8; bytes].into_boxed_slice(),
                class,
            };
        }
        let mut buf = self.free[class].pop().expect("refill stocked the class");
        self.stats.cached -= 1;
        buf.fill(0);
        PoolBlock { buf, class }
    }

    /// Return a block to its free list. The contents are rezeroed lazily,
    /// on reuse (see [`MemPool::alloc`]), so dead blocks cost nothing.
    pub fn free(&mut self, mut block: PoolBlock) {
        self.stats.cached += 1;
        let buf = std::mem::take(&mut block.buf);
        let class = block.class;
        // The block stays alive in the free list: skip PoolBlock::Drop's
        // gauge decrement (the pool's own Drop settles cached blocks).
        std::mem::forget(block);
        self.free[class].push(buf);
    }

    /// Allocation statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

impl Drop for MemPool {
    fn drop(&mut self) {
        // Cached blocks park in this pool's node arena for the next pool
        // on the node (overflow past the arena cap drops to the global
        // allocator). Either way they leave the live-block gauge — a
        // refill's `take` re-adds whatever gets recycled.
        LIVE_BLOCKS.fetch_sub(self.stats.cached, Ordering::Relaxed);
        let arena = node_arena(self.node);
        for (class, list) in self.free.iter_mut().enumerate() {
            if !list.is_empty() {
                arena.put(class, list.drain(..));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rounding() {
        assert_eq!(MemPool::class_for(1), 0);
        assert_eq!(MemPool::class_for(64), 0);
        assert_eq!(MemPool::class_for(65), 1);
        assert_eq!(MemPool::class_for(128), 1);
        assert_eq!(MemPool::class_for(1000), 4); // 1024 = 64 << 4
        assert_eq!(MemPool::class_size(4), 1024);
    }

    #[test]
    fn alloc_is_at_least_requested_and_zeroed() {
        let mut p = MemPool::new();
        let b = p.alloc(100);
        assert!(b.capacity() >= 100);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn freed_blocks_are_reused() {
        let mut p = MemPool::new();
        // Drain the initial refill batch so the next alloc/free pair hits.
        let blocks: Vec<_> = (0..INITIAL_BATCH).map(|_| p.alloc(64)).collect();
        for b in blocks {
            p.free(b);
        }
        let before = p.stats();
        let b = p.alloc(64);
        let after = p.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        p.free(b);
    }

    #[test]
    fn batch_doubles_on_miss() {
        let mut p = MemPool::new();
        let mut live = Vec::new();
        // Two full refills of class 0: first gives 8 blocks, second 16.
        for _ in 0..(INITIAL_BATCH + INITIAL_BATCH * 2) {
            live.push(p.alloc(64));
        }
        assert_eq!(p.stats().misses, 2);
        assert_eq!(
            p.stats().refilled_blocks,
            (INITIAL_BATCH + INITIAL_BATCH * 2) as u64
        );
    }

    #[test]
    fn alloc_uninit_recycles_without_the_zeroing_cost() {
        let mut p = MemPool::new();
        let mut a = p.alloc_uninit(64);
        a.as_mut_slice().fill(0xAA);
        p.free(a);
        // The uninit variant may (and here does) expose the old bytes —
        // its contract is "overwrite everything you read".
        let b = p.alloc_uninit(64);
        assert_eq!(b[0], 0xAA);
        p.free(b);
        // The zeroing allocator still honours its contract afterwards.
        let c = p.alloc(64);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn recycled_block_does_not_leak_previous_payload() {
        // Regression: a 100-byte "row" and a 65-byte "row" share the
        // 128-byte class. Without the rezero-on-reuse, the second
        // allocation exposed bytes 65..100 of the first row.
        let mut p = MemPool::new();
        let mut a = p.alloc(100);
        a.as_mut_slice().fill(0xEE);
        p.free(a);
        let b = p.alloc(65);
        assert_eq!(b.capacity(), 128);
        assert!(
            b.iter().all(|&x| x == 0),
            "recycled block leaked stale bytes"
        );
        p.free(b);
        // And again across a second recycle round, with a full-class row.
        let mut c = p.alloc(128);
        c.as_mut_slice().fill(0x55);
        p.free(c);
        let d = p.alloc(70);
        assert!(d.iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds largest pool class")]
    fn oversized_allocation_panics() {
        let mut p = MemPool::new();
        let _ = p.alloc(64 << NUM_CLASSES);
    }

    #[test]
    fn dropped_pool_parks_blocks_in_its_node_arena() {
        // A class no other test touches (512 KiB) so the process-global
        // arena cannot be perturbed by sibling tests.
        const SZ: usize = 512 * 1024;
        let node = 0;
        let before = arena_depth(node, SZ);
        let mut p = MemPool::new_on_node(node);
        let blocks: Vec<_> = (0..4).map(|_| p.alloc(SZ)).collect();
        for b in blocks {
            p.free(b);
        }
        let cached = p.stats().cached;
        assert!(cached >= 4);
        drop(p);
        assert_eq!(arena_depth(node, SZ), before + cached as usize);

        // A successor pool on the same node recycles them.
        let mut q = MemPool::new_on_node(node);
        let b = q.alloc(SZ);
        assert!(q.stats().arena_hits >= 1, "refill must hit the arena");
        assert!(b.iter().all(|&x| x == 0), "recycled refill must be zeroed");
        q.free(b);
    }

    #[test]
    fn arena_round_trip_settles_the_gauge() {
        const SZ: usize = 1024 * 1024;
        let before = live_blocks();
        let mut p = MemPool::new_on_node(0);
        let b = p.alloc(SZ);
        p.free(b);
        drop(p); // parks in the arena, leaves the gauge
        let mut q = MemPool::new_on_node(0);
        let b = q.alloc(SZ); // take re-enters the gauge
        q.free(b);
        drop(q);
        let after = live_blocks();
        assert!(
            after <= before + 64 && before <= after + 64,
            "gauge must settle near its start: before={before} after={after}"
        );
    }

    #[test]
    fn out_of_range_node_clamps_to_topology() {
        let p = MemPool::new_on_node(usize::MAX);
        assert!(p.node() < abyss_common::numa_topology().nodes());
    }

    #[test]
    fn live_block_gauge_tracks_refill_and_release() {
        // The gauge is process-global and sibling tests run concurrently,
        // so assert with slack: it must rise by at least a refill batch
        // while the pool lives, and settle back once everything drops.
        let before = live_blocks();
        let mut p = MemPool::new();
        let a = p.alloc(64);
        let b = p.alloc(64);
        assert!(
            live_blocks() + 64 >= before + INITIAL_BATCH as u64,
            "refill must raise the gauge"
        );
        p.free(a); // freeing keeps the block alive (cached)
        drop(b); // dropping releases it to the global allocator
        drop(p); // the pool settles its cached blocks
        let after = live_blocks();
        assert!(
            after <= before + 64 && before <= after + 64,
            "gauge must settle near its start: before={before} after={after}"
        );
    }
}
