//! Per-thread memory pools with dynamic resizing — the paper's custom
//! `malloc` (§4.1).
//!
//! The paper found the global allocator to be a first-order bottleneck even
//! for read-only workloads (TIMESTAMP copies every tuple it reads) and
//! replaced it with per-thread pools whose size adapts to the workload.
//! [`MemPool`] reproduces that design: each worker owns one pool; blocks
//! are size-classed; freeing returns a block to its class's free list; when
//! a class misses repeatedly, its refill batch doubles (the "automatically
//! resizes the pools based on the workload" behaviour).
//!
//! The pool is deliberately *not* `Sync` — one pool per worker, zero
//! cross-thread coordination, exactly as in the paper.

use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest block class, bytes (everything is rounded up to a class).
const MIN_CLASS: usize = 64;
/// Number of size classes: 64, 128, ..., 64 << (NUM_CLASSES-1) = 2 MiB.
const NUM_CLASSES: usize = 16;
/// Initial refill batch per class.
const INITIAL_BATCH: usize = 8;

/// Process-wide count of pool blocks alive anywhere — cached in a free
/// list, borrowed as a [`PoolBlock`], or in flight. Touched only on cold
/// paths (refill, block drop, pool drop), never per alloc/free, so the
/// gauge costs the hot path nothing.
static LIVE_BLOCKS: AtomicU64 = AtomicU64::new(0);

/// The process-wide mempool live-block gauge (see [`MemPool`] — one pool
/// per worker, so a global counter is the only cross-pool view).
pub fn live_blocks() -> u64 {
    LIVE_BLOCKS.load(Ordering::Relaxed)
}

/// A block borrowed from a [`MemPool`]. Return it with [`MemPool::free`];
/// dropping it without freeing simply releases the memory to the global
/// allocator (correct, but forfeits reuse).
#[derive(Debug)]
pub struct PoolBlock {
    buf: Box<[u8]>,
    class: usize,
}

impl PoolBlock {
    /// The usable bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// The usable bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Capacity of the block (the rounded-up class size).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl std::ops::Deref for PoolBlock {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for PoolBlock {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PoolBlock {
    fn drop(&mut self) {
        // Only blocks released to the global allocator land here:
        // `MemPool::free` disassembles the wrapper without running Drop,
        // keeping its blocks on the gauge until the pool itself drops.
        LIVE_BLOCKS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Counters exposed for the allocator ablation benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a free list.
    pub hits: u64,
    /// Allocations that had to refill from the global allocator.
    pub misses: u64,
    /// Total blocks fetched from the global allocator.
    pub refilled_blocks: u64,
    /// Blocks currently cached across all free lists.
    pub cached: u64,
}

/// A per-worker block pool with dynamically resized refill batches.
#[derive(Debug)]
pub struct MemPool {
    free: [Vec<Box<[u8]>>; NUM_CLASSES],
    batch: [usize; NUM_CLASSES],
    stats: PoolStats,
}

impl Default for MemPool {
    fn default() -> Self {
        Self::new()
    }
}

impl MemPool {
    /// An empty pool; memory is fetched lazily on first use.
    pub fn new() -> Self {
        Self {
            free: std::array::from_fn(|_| Vec::new()),
            batch: [INITIAL_BATCH; NUM_CLASSES],
            stats: PoolStats::default(),
        }
    }

    fn class_for(size: usize) -> usize {
        let rounded = size.max(MIN_CLASS).next_power_of_two();
        let class = rounded.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize;
        assert!(
            class < NUM_CLASSES,
            "allocation of {size} bytes exceeds largest pool class"
        );
        class
    }

    /// Size in bytes of blocks in `class`.
    fn class_size(class: usize) -> usize {
        MIN_CLASS << class
    }

    /// Allocate a zero-initialized block of at least `size` bytes.
    pub fn alloc(&mut self, size: usize) -> PoolBlock {
        let class = Self::class_for(size);
        if let Some(mut buf) = self.free[class].pop() {
            // Recycled blocks come back with their previous contents
            // (`free` defers the cost); rezero here so the documented
            // zero-init contract holds — a shorter row reusing a larger
            // block must not expose a previous row's bytes through
            // `PoolBlock::as_slice`.
            buf.fill(0);
            self.stats.hits += 1;
            self.stats.cached -= 1;
            return PoolBlock { buf, class };
        }
        self.refill(class)
    }

    /// Allocate a block of at least `size` bytes **without** the zero-init
    /// guarantee: a recycled block keeps its previous contents. Strictly
    /// for callers that overwrite every byte they will ever read (full-row
    /// copies on hot paths); anything that exposes unwritten bytes must
    /// use [`MemPool::alloc`].
    pub fn alloc_uninit(&mut self, size: usize) -> PoolBlock {
        let class = Self::class_for(size);
        if let Some(buf) = self.free[class].pop() {
            self.stats.hits += 1;
            self.stats.cached -= 1;
            return PoolBlock { buf, class };
        }
        self.refill(class)
    }

    /// Miss path shared by both allocators: fetch a doubling batch from
    /// the global allocator (the paper's dynamic pool resizing). Fresh
    /// blocks from here are always zeroed.
    fn refill(&mut self, class: usize) -> PoolBlock {
        self.stats.misses += 1;
        let n = self.batch[class];
        self.batch[class] = (n * 2).min(4096);
        let bytes = Self::class_size(class);
        LIVE_BLOCKS.fetch_add(n as u64, Ordering::Relaxed);
        for _ in 0..n.saturating_sub(1) {
            self.free[class].push(vec![0u8; bytes].into_boxed_slice());
            self.stats.cached += 1;
        }
        self.stats.refilled_blocks += n as u64;
        PoolBlock {
            buf: vec![0u8; bytes].into_boxed_slice(),
            class,
        }
    }

    /// Return a block to its free list. The contents are rezeroed lazily,
    /// on reuse (see [`MemPool::alloc`]), so dead blocks cost nothing.
    pub fn free(&mut self, mut block: PoolBlock) {
        self.stats.cached += 1;
        let buf = std::mem::take(&mut block.buf);
        let class = block.class;
        // The block stays alive in the free list: skip PoolBlock::Drop's
        // gauge decrement (the pool's own Drop settles cached blocks).
        std::mem::forget(block);
        self.free[class].push(buf);
    }

    /// Allocation statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

impl Drop for MemPool {
    fn drop(&mut self) {
        // Blocks still cached in the free lists return to the global
        // allocator with the pool; settle the live-block gauge for them.
        LIVE_BLOCKS.fetch_sub(self.stats.cached, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rounding() {
        assert_eq!(MemPool::class_for(1), 0);
        assert_eq!(MemPool::class_for(64), 0);
        assert_eq!(MemPool::class_for(65), 1);
        assert_eq!(MemPool::class_for(128), 1);
        assert_eq!(MemPool::class_for(1000), 4); // 1024 = 64 << 4
        assert_eq!(MemPool::class_size(4), 1024);
    }

    #[test]
    fn alloc_is_at_least_requested_and_zeroed() {
        let mut p = MemPool::new();
        let b = p.alloc(100);
        assert!(b.capacity() >= 100);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn freed_blocks_are_reused() {
        let mut p = MemPool::new();
        // Drain the initial refill batch so the next alloc/free pair hits.
        let blocks: Vec<_> = (0..INITIAL_BATCH).map(|_| p.alloc(64)).collect();
        for b in blocks {
            p.free(b);
        }
        let before = p.stats();
        let b = p.alloc(64);
        let after = p.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        p.free(b);
    }

    #[test]
    fn batch_doubles_on_miss() {
        let mut p = MemPool::new();
        let mut live = Vec::new();
        // Two full refills of class 0: first gives 8 blocks, second 16.
        for _ in 0..(INITIAL_BATCH + INITIAL_BATCH * 2) {
            live.push(p.alloc(64));
        }
        assert_eq!(p.stats().misses, 2);
        assert_eq!(
            p.stats().refilled_blocks,
            (INITIAL_BATCH + INITIAL_BATCH * 2) as u64
        );
    }

    #[test]
    fn alloc_uninit_recycles_without_the_zeroing_cost() {
        let mut p = MemPool::new();
        let mut a = p.alloc_uninit(64);
        a.as_mut_slice().fill(0xAA);
        p.free(a);
        // The uninit variant may (and here does) expose the old bytes —
        // its contract is "overwrite everything you read".
        let b = p.alloc_uninit(64);
        assert_eq!(b[0], 0xAA);
        p.free(b);
        // The zeroing allocator still honours its contract afterwards.
        let c = p.alloc(64);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn recycled_block_does_not_leak_previous_payload() {
        // Regression: a 100-byte "row" and a 65-byte "row" share the
        // 128-byte class. Without the rezero-on-reuse, the second
        // allocation exposed bytes 65..100 of the first row.
        let mut p = MemPool::new();
        let mut a = p.alloc(100);
        a.as_mut_slice().fill(0xEE);
        p.free(a);
        let b = p.alloc(65);
        assert_eq!(b.capacity(), 128);
        assert!(
            b.iter().all(|&x| x == 0),
            "recycled block leaked stale bytes"
        );
        p.free(b);
        // And again across a second recycle round, with a full-class row.
        let mut c = p.alloc(128);
        c.as_mut_slice().fill(0x55);
        p.free(c);
        let d = p.alloc(70);
        assert!(d.iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds largest pool class")]
    fn oversized_allocation_panics() {
        let mut p = MemPool::new();
        let _ = p.alloc(64 << NUM_CLASSES);
    }

    #[test]
    fn live_block_gauge_tracks_refill_and_release() {
        // The gauge is process-global and sibling tests run concurrently,
        // so assert with slack: it must rise by at least a refill batch
        // while the pool lives, and settle back once everything drops.
        let before = live_blocks();
        let mut p = MemPool::new();
        let a = p.alloc(64);
        let b = p.alloc(64);
        assert!(
            live_blocks() + 64 >= before + INITIAL_BATCH as u64,
            "refill must raise the gauge"
        );
        p.free(a); // freeing keeps the block alive (cached)
        drop(b); // dropping releases it to the global allocator
        drop(p); // the pool settles its cached blocks
        let after = live_blocks();
        assert!(
            after <= before + 64 && before <= after + 64,
            "gauge must settle near its start: before={before} after={after}"
        );
    }
}
