//! Key → partition maps for the H-STORE scheme (§2.2, §5.5).
//!
//! YCSB's single table is hash-partitioned so each partition holds roughly
//! the same number of records (§5.5); TPC-C is partitioned by warehouse id
//! (§3.3), which our TPC-C key encoding exposes as the key's upper bits.

use abyss_common::fxhash::hash_u64;
use abyss_common::{Key, PartId};

/// How keys map to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMap {
    /// Everything in one partition (non-partitioned schemes).
    Single,
    /// Hash partitioning over `parts` partitions (YCSB, §5.5).
    Hash {
        /// Number of partitions.
        parts: u32,
    },
    /// `key % parts` — the "simple hashing strategy" of §5.5. Used by the
    /// YCSB generator because it makes "a uniform key inside partition p"
    /// directly constructible (`key = r * parts + p`).
    Modulo {
        /// Number of partitions.
        parts: u32,
    },
    /// The key's upper bits name the warehouse; warehouse w → partition
    /// `w % parts` (TPC-C; each partition is one warehouse when
    /// `parts == warehouses`).
    KeyUpperBits {
        /// Number of partitions.
        parts: u32,
        /// How far to shift the key right to recover the warehouse id.
        shift: u32,
    },
}

impl PartitionMap {
    /// Partition of `key`.
    #[inline]
    pub fn partition_of(&self, key: Key) -> PartId {
        match *self {
            PartitionMap::Single => 0,
            PartitionMap::Hash { parts } => (hash_u64(key) % u64::from(parts)) as PartId,
            PartitionMap::Modulo { parts } => (key % u64::from(parts)) as PartId,
            PartitionMap::KeyUpperBits { parts, shift } => {
                ((key >> shift) % u64::from(parts)) as PartId
            }
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        match *self {
            PartitionMap::Single => 1,
            PartitionMap::Hash { parts }
            | PartitionMap::Modulo { parts }
            | PartitionMap::KeyUpperBits { parts, .. } => parts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_maps_everything_to_zero() {
        let m = PartitionMap::Single;
        assert_eq!(m.partition_of(0), 0);
        assert_eq!(m.partition_of(u64::MAX), 0);
        assert_eq!(m.partition_count(), 1);
    }

    #[test]
    fn hash_partitioning_is_balanced() {
        let m = PartitionMap::Hash { parts: 16 };
        let mut counts = [0u32; 16];
        for k in 0..16_000 {
            counts[m.partition_of(k) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Each partition should get ~1000 keys; allow ±20%.
        assert!(*min > 800 && *max < 1200, "unbalanced: min={min} max={max}");
    }

    #[test]
    fn upper_bits_extracts_warehouse() {
        // TPC-C encoding: warehouse in bits 40.., per-warehouse payload below.
        let m = PartitionMap::KeyUpperBits {
            parts: 4,
            shift: 40,
        };
        let key = (3u64 << 40) | 12345;
        assert_eq!(m.partition_of(key), 3);
        let key2 = (5u64 << 40) | 7; // warehouse 5 wraps to partition 1
        assert_eq!(m.partition_of(key2), 1);
    }

    #[test]
    fn partition_is_stable() {
        let m = PartitionMap::Hash { parts: 64 };
        for k in [0u64, 1, 99, 1 << 33] {
            assert_eq!(m.partition_of(k), m.partition_of(k));
        }
    }
}
