//! Typed accessors over raw row bytes.
//!
//! Rows are plain byte slices laid out by a [`crate::catalog::Schema`];
//! these helpers read and write fixed-width integer columns and fill
//! payload columns. They operate on borrowed slices so they work both on
//! rows inside a table arena and on private copies (TIMESTAMP/OCC reads).

use crate::catalog::Schema;

/// Read a `u64` column.
#[inline]
pub fn get_u64(schema: &Schema, row: &[u8], col: usize) -> u64 {
    let off = schema.offset(col);
    u64::from_le_bytes(row[off..off + 8].try_into().expect("u64 column width"))
}

/// Write a `u64` column.
#[inline]
pub fn set_u64(schema: &Schema, row: &mut [u8], col: usize, value: u64) {
    let off = schema.offset(col);
    row[off..off + 8].copy_from_slice(&value.to_le_bytes());
}

/// Add `delta` to a `u64` column, returning the previous value
/// (the TPC-C `D_NEXT_O_ID` pattern).
#[inline]
pub fn fetch_add_u64(schema: &Schema, row: &mut [u8], col: usize, delta: u64) -> u64 {
    let old = get_u64(schema, row, col);
    set_u64(schema, row, col, old.wrapping_add(delta));
    old
}

/// Fill a payload column with a repeating byte (workload loaders).
#[inline]
pub fn fill_column(schema: &Schema, row: &mut [u8], col: usize, byte: u8) {
    let off = schema.offset(col);
    let w = schema.width(col);
    row[off..off + w].fill(byte);
}

/// A cheap whole-row checksum used by tests to detect torn writes.
pub fn checksum(row: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &b in row {
        acc = (acc ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::u64("id"),
            ColumnDef::new("pay", 10),
            ColumnDef::u64("ctr"),
        ])
    }

    #[test]
    fn u64_round_trip() {
        let s = schema();
        let mut row = vec![0u8; s.row_size()];
        set_u64(&s, &mut row, 0, 0xdead_beef_cafe);
        set_u64(&s, &mut row, 2, 7);
        assert_eq!(get_u64(&s, &row, 0), 0xdead_beef_cafe);
        assert_eq!(get_u64(&s, &row, 2), 7);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let s = schema();
        let mut row = vec![0u8; s.row_size()];
        set_u64(&s, &mut row, 2, 3000);
        assert_eq!(fetch_add_u64(&s, &mut row, 2, 1), 3000);
        assert_eq!(get_u64(&s, &row, 2), 3001);
    }

    #[test]
    fn fill_touches_only_the_column() {
        let s = schema();
        let mut row = vec![0u8; s.row_size()];
        set_u64(&s, &mut row, 0, u64::MAX);
        fill_column(&s, &mut row, 1, 0xAB);
        assert_eq!(get_u64(&s, &row, 0), u64::MAX);
        assert!(row[8..18].iter().all(|&b| b == 0xAB));
        assert_eq!(get_u64(&s, &row, 2), 0);
    }

    #[test]
    fn checksum_detects_single_byte_change() {
        let mut row = vec![1u8; 64];
        let c1 = checksum(&row);
        row[63] = 2;
        assert_ne!(c1, checksum(&row));
    }
}
