//! Chained hash index with per-bucket latches.
//!
//! The paper's DBMS "supports basic hash table indexes" whose bucket
//! latching shows up as the INDEX slice of the time breakdown (§3.2). We
//! use open chaining with one small `parking_lot::Mutex` per bucket: probes
//! and inserts latch exactly one bucket, so index contention only arises on
//! genuinely colliding keys.

use abyss_common::fxhash::hash_u64;
use abyss_common::{DbError, Key, RowIdx, TableId};
use parking_lot::Mutex;

/// One index bucket: a short chain of `(key, row)` pairs.
#[derive(Debug, Default)]
struct Bucket {
    entries: Vec<(Key, RowIdx)>,
}

/// A hash index mapping primary keys to row indexes.
#[derive(Debug)]
pub struct HashIndex {
    table: TableId,
    mask: u64,
    buckets: Box<[Mutex<Bucket>]>,
}

impl HashIndex {
    /// Create an index for `table` sized for roughly `expected` keys.
    ///
    /// Bucket count is the next power of two above `expected / 4`, so the
    /// expected chain length stays ≤ 4.
    pub fn new(table: TableId, expected: u64) -> Self {
        let want = (expected / 4).max(16);
        let n = want.next_power_of_two();
        let mut v = Vec::with_capacity(n as usize);
        v.resize_with(n as usize, Mutex::default);
        Self {
            table,
            mask: n - 1,
            buckets: v.into_boxed_slice(),
        }
    }

    #[inline]
    fn bucket(&self, key: Key) -> &Mutex<Bucket> {
        &self.buckets[(hash_u64(key) & self.mask) as usize]
    }

    /// Insert `key → row`. Fails on duplicates.
    pub fn insert(&self, key: Key, row: RowIdx) -> Result<(), DbError> {
        let mut b = self.bucket(key).lock();
        if b.entries.iter().any(|&(k, _)| k == key) {
            return Err(DbError::DuplicateKey {
                table: self.table,
                key,
            });
        }
        b.entries.push((key, row));
        Ok(())
    }

    /// Look up `key`.
    pub fn get(&self, key: Key) -> Result<RowIdx, DbError> {
        let b = self.bucket(key).lock();
        b.entries
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, r)| r)
            .ok_or(DbError::KeyNotFound {
                table: self.table,
                key,
            })
    }

    /// Look up `key`, returning `None` when absent.
    pub fn find(&self, key: Key) -> Option<RowIdx> {
        let b = self.bucket(key).lock();
        b.entries.iter().find(|&&(k, _)| k == key).map(|&(_, r)| r)
    }

    /// Remove `key`, returning its row if present.
    pub fn remove(&self, key: Key) -> Option<RowIdx> {
        let mut b = self.bucket(key).lock();
        let pos = b.entries.iter().position(|&(k, _)| k == key)?;
        Some(b.entries.swap_remove(pos).1)
    }

    /// Number of indexed keys (walks every bucket; diagnostics only).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().entries.len()).sum()
    }

    /// True if no keys are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every `(key, row)` pair, bucket by bucket (each bucket is
    /// latched for the duration of its visit). Order is arbitrary.
    /// Diagnostics and quiescent walks (state digests, recovery checks) —
    /// not for hot paths.
    pub fn for_each(&self, mut f: impl FnMut(Key, RowIdx)) {
        for b in self.buckets.iter() {
            for &(k, r) in &b.lock().entries {
                f(k, r);
            }
        }
    }

    /// Length of the longest chain (diagnostics; load-factor checks).
    pub fn max_chain(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.lock().entries.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let idx = HashIndex::new(0, 100);
        idx.insert(5, 50).unwrap();
        idx.insert(6, 60).unwrap();
        assert_eq!(idx.get(5).unwrap(), 50);
        assert_eq!(idx.find(6), Some(60));
        assert_eq!(idx.find(7), None);
        assert_eq!(idx.remove(5), Some(50));
        assert!(idx.get(5).is_err());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let idx = HashIndex::new(3, 10);
        idx.insert(1, 10).unwrap();
        let err = idx.insert(1, 11).unwrap_err();
        assert_eq!(err, DbError::DuplicateKey { table: 3, key: 1 });
    }

    #[test]
    fn sequential_keys_spread_over_buckets() {
        let idx = HashIndex::new(0, 10_000);
        for k in 0..10_000 {
            idx.insert(k, k).unwrap();
        }
        assert_eq!(idx.len(), 10_000);
        assert!(
            idx.max_chain() <= 16,
            "max chain {} too long",
            idx.max_chain()
        );
    }

    #[test]
    fn concurrent_inserts_and_probes() {
        use std::sync::Arc;
        let idx = Arc::new(HashIndex::new(0, 40_000));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    let k = t * 10_000 + i;
                    idx.insert(k, k * 2).unwrap();
                    assert_eq!(idx.get(k).unwrap(), k * 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 40_000);
    }
}
