//! # abyss-storage
//!
//! The storage substrate underneath the abyss DBMS, mirroring the test-bed
//! of §3.2 of the paper: all data lives in memory in a row-oriented layout,
//! tables are reached through hash indexes with low-level bucket latching,
//! and memory comes from per-thread pools with dynamic resizing (the
//! paper's custom `malloc`, §4.1).
//!
//! * [`catalog`] — column/schema/table definitions with fixed row layouts.
//! * [`row`] — typed accessors over raw row bytes.
//! * [`table`] — fixed-capacity row arenas with lock-free allocation.
//! * [`index`] — chained hash index with per-bucket latches.
//! * [`btree`] — ordered index: a B+-tree with optimistic lock coupling,
//!   leaf chaining for range scans, and the per-leaf hooks the schemes use
//!   for phantom protection.
//! * [`mempool`] — per-thread, dynamically resized block pools.
//! * [`partition`] — key → partition maps for the H-STORE scheme.
//! * [`wal`] — per-worker redo logs with epoch group commit and
//!   torn-tail-safe recovery scanning.

pub mod btree;
pub mod catalog;
pub mod index;
pub mod mempool;
pub mod partition;
pub mod row;
pub mod table;
pub mod wal;

pub use btree::{BPlusTree, BtreeHealth, LeafId, ScanResult};
pub use catalog::{Catalog, ColumnDef, Schema, TableDef};
pub use index::HashIndex;
pub use mempool::MemPool;
pub use partition::PartitionMap;
pub use table::Table;
pub use wal::{FsyncPolicy, WalSet, WalStats};
