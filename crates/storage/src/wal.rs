//! Write-ahead logging: per-worker redo logs with epoch group commit.
//!
//! The paper evaluates concurrency control with durability switched off;
//! every production main-memory system pairs its CC scheme with logging —
//! Hekaton flushes transaction-local redo buffers at commit, Silo's SiloR
//! logger amortizes the flush over *epochs*. This module is the storage
//! half of that design:
//!
//! * **Value logging, one shard per worker.** Each committed transaction
//!   appends one record — its commit epoch, a scheme-provided serial
//!   number, and the after-images of its write set (puts and deletes by
//!   primary key) — to its worker's private shard. No cross-worker
//!   coordination on the append path, mirroring the engine's
//!   one-worker-per-core model.
//! * **Epoch group commit.** A background flusher drains every shard and
//!   publishes a *durable epoch* `D`: the newest epoch `e` such that every
//!   record with epoch `≤ e` from every shard has reached the log device.
//!   A commit is acknowledged durable once its epoch is `≤ D`. The
//!   horizon comes from the engine's epoch quiescence protocol
//!   (`safe_epoch`), the same serialization-point-free watermark SILO
//!   commits with.
//! * **Torn-tail recovery.** Records are framed with a length + checksum;
//!   a crash mid-write leaves a tail that fails the checksum and is
//!   truncated. Replay applies records in `(epoch, seq)` order up to the
//!   recovery bound — idempotent, last-writer-wins.
//!
//! The engine-side protocol (who calls what, and why the horizon is
//! sound) lives in `abyss-core`; this module only knows bytes and files.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use abyss_common::fxhash::hash_bytes;
use abyss_common::{Key, TableId};
use parking_lot::Mutex;

/// Shard file name prefix: `wal-<worker>.log`.
pub const SHARD_PREFIX: &str = "wal-";
/// Shard file name suffix.
pub const SHARD_SUFFIX: &str = ".log";
/// Durable-epoch meta file name.
pub const META_FILE: &str = "wal.meta";

/// Magic bytes opening every shard file.
const FILE_MAGIC: &[u8; 8] = b"ABYSSWAL";
/// On-disk format version.
const FILE_VERSION: u32 = 1;
/// Shard header: magic + version + worker id.
const HEADER_LEN: u64 = 8 + 4 + 4;
/// Byte length of a shard file's header — the smallest valid shard, and
/// the truncation floor recovery may cut a shard back to.
pub const HEADER_BYTES: u64 = HEADER_LEN;
/// Frame prefix: body length (u32) + body checksum (u64).
const FRAME_LEN: usize = 4 + 8;
/// Upper bound on a single record body — anything larger is treated as a
/// torn/corrupt frame instead of a gigabyte allocation.
const MAX_BODY: u32 = 1 << 28;

/// When (and whether) log writes are forced to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsyncPolicy {
    /// Buffered writes only, never fsynced — group commit without sync
    /// (the ablation baseline; an OS crash can lose epochs the watermark
    /// already claimed durable).
    Never,
    /// fsync once per group flush: durability lags by at most one epoch
    /// group (SiloR's design point).
    Group,
    /// fsync inside every commit before it is acknowledged — the
    /// classical per-commit force policy the group-commit design exists
    /// to beat.
    EveryCommit,
}

impl FsyncPolicy {
    /// Short lower-case label for JSON/benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            FsyncPolicy::Never => "never",
            FsyncPolicy::Group => "group",
            FsyncPolicy::EveryCommit => "every_commit",
        }
    }
}

/// One write-set operation of a commit record, borrowing the after-image.
#[derive(Debug, Clone, Copy)]
pub enum LogOp<'a> {
    /// Insert-or-update `key` with this after-image.
    Put {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: Key,
        /// The committed row bytes.
        image: &'a [u8],
    },
    /// Delete `key`.
    Del {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: Key,
    },
}

/// A decoded write-set operation (owning variant of [`LogOp`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecOp {
    /// Insert-or-update `key` with the stored after-image.
    Put {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: Key,
        /// The committed row bytes.
        image: Vec<u8>,
    },
    /// Delete `key`.
    Del {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: Key,
    },
}

/// A decoded commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The commit epoch (read at the transaction's serialization point).
    pub epoch: u64,
    /// Scheme-provided serial number; within an epoch, records touching
    /// the same key replay in increasing `seq` (last-writer-wins).
    pub seq: u64,
    /// Byte offset one past this record in its shard file — the
    /// truncation point if the recovery bound excludes its successors.
    pub end_offset: u64,
    /// The write set, in transaction-execution order.
    pub ops: Vec<RecOp>,
}

/// Everything decoded from one shard file.
#[derive(Debug)]
pub struct ShardScan {
    /// The shard file.
    pub path: PathBuf,
    /// Worker id stored in the shard header.
    pub worker: u32,
    /// Complete, checksum-valid records in append order.
    pub records: Vec<Record>,
    /// True when the file ended in a torn or corrupt frame (the tail
    /// after the last valid record is garbage).
    pub torn: bool,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
}

/// Counters the stats surface exports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit records appended.
    pub records: u64,
    /// Bytes appended (frame + body).
    pub bytes: u64,
    /// Buffer drains to the OS (write syscalls batches).
    pub flushes: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// The published durable epoch.
    pub durable_epoch: u64,
    /// A log write/sync failed (disk full, EIO): appends are dropped and
    /// the durable epoch is frozen — nothing is falsely claimed durable.
    pub failed: bool,
}

/// One worker's shard: the open file plus its in-memory append buffer.
#[derive(Debug)]
struct WalShard {
    file: File,
    buf: Vec<u8>,
    /// Newest epoch this shard is known flushed (and, per policy, synced)
    /// through.
    flushed_epoch: u64,
    /// Bytes were written since the last fsync (skip no-op syncs).
    wrote_since_fsync: bool,
}

/// The shared log: per-worker shards, the durable-epoch watermark, and
/// the flush machinery. One instance per database.
#[derive(Debug)]
pub struct WalSet {
    dir: PathBuf,
    policy: FsyncPolicy,
    group_max_bytes: usize,
    shards: Box<[Mutex<WalShard>]>,
    /// Serializes group flushes against each other: the drain → sync →
    /// advance-watermark sequence must not interleave between two
    /// flushers, or one could publish a horizon whose bytes the other
    /// has written but not yet synced.
    flush_gate: Mutex<()>,
    durable: AtomicU64,
    /// Poisoned by the first I/O failure. A panic here would either be
    /// swallowed by the background flusher thread (silently freezing the
    /// durable epoch while the engine keeps claiming success) or take a
    /// worker down mid-commit — instead the set drops further appends,
    /// freezes the watermark, and reports through [`WalStats::failed`].
    failed: AtomicBool,
    records: AtomicU64,
    bytes: AtomicU64,
    flushes: AtomicU64,
    fsyncs: AtomicU64,
}

impl WalSet {
    /// Open (creating as needed) `workers` shard files under `dir`.
    /// Reopening an existing directory resumes its durable epoch from the
    /// meta file; appends continue at the end of each shard.
    pub fn open(
        dir: &Path,
        workers: u32,
        policy: FsyncPolicy,
        group_max_bytes: usize,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(workers as usize);
        for w in 0..workers {
            let path = shard_path(dir, w);
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            if file.metadata()?.len() < HEADER_LEN {
                // Fresh (or unusably short) shard: start clean.
                file.set_len(0)?;
                file.write_all(FILE_MAGIC)?;
                file.write_all(&FILE_VERSION.to_le_bytes())?;
                file.write_all(&w.to_le_bytes())?;
            }
            shards.push(Mutex::new(WalShard {
                file,
                buf: Vec::new(),
                flushed_epoch: 0,
                wrote_since_fsync: false,
            }));
        }
        let durable = read_meta(dir).unwrap_or(0);
        for s in &shards {
            s.lock().flushed_epoch = durable;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            policy,
            group_max_bytes: group_max_bytes.max(1),
            shards: shards.into_boxed_slice(),
            flush_gate: Mutex::new(()),
            durable: AtomicU64::new(durable),
            failed: AtomicBool::new(false),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        })
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The newest epoch every shard is flushed through: commits with
    /// epochs `≤` this are durable (to the limit of [`FsyncPolicy`]).
    pub fn durable_epoch(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            durable_epoch: self.durable_epoch(),
            failed: self.is_failed(),
        }
    }

    /// Bytes buffered across all shards that have not yet drained to the
    /// OS — the live gauge of how much the next group flush will write.
    /// Briefly locks each shard; metrics/diagnostics use, not hot paths.
    pub fn backlog_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().buf.len() as u64).sum()
    }

    /// Has a log write/sync failed? Once true, appends are dropped and
    /// the durable epoch never advances again.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Record the first I/O failure (idempotent; logs once).
    fn poison(&self, what: &str, e: &std::io::Error) {
        if !self.failed.swap(true, Ordering::AcqRel) {
            eprintln!(
                "abyss-wal: {what} failed: {e}; logging disabled, durable epoch frozen at {}",
                self.durable_epoch()
            );
        }
    }

    /// Append one commit record to `worker`'s shard. Returns the bytes
    /// appended. Under [`FsyncPolicy::EveryCommit`] the record is written
    /// and fsynced before this returns (the commit is durable at return);
    /// otherwise it is buffered until the next group flush, or drained
    /// early (without sync) once the buffer passes `group_max_bytes`.
    pub fn append_commit(&self, worker: u32, epoch: u64, seq: u64, ops: &[LogOp<'_>]) -> usize {
        if self.is_failed() {
            return 0; // poisoned: drop the append, never claim durability
        }
        let mut shard = self.shards[worker as usize].lock();
        let start = shard.buf.len();
        encode_record(&mut shard.buf, epoch, seq, ops);
        let appended = shard.buf.len() - start;
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(appended as u64, Ordering::Relaxed);
        if self.policy == FsyncPolicy::EveryCommit {
            self.drain(&mut shard, true);
            shard.flushed_epoch = shard.flushed_epoch.max(epoch);
        } else if shard.buf.len() >= self.group_max_bytes {
            // Early drain keeps the buffer bounded; durability (the
            // flushed-epoch advance + sync) still waits for the group
            // fence.
            self.drain(&mut shard, false);
        }
        appended
    }

    /// Group-commit fence: drain every shard, sync (per policy) with the
    /// shard locks **released** — an fsync must never stall that worker's
    /// appends — then mark each shard flushed through `horizon` and
    /// publish the new durable epoch (the minimum over shards) to the
    /// meta file.
    ///
    /// Soundness contract (upheld by the engine): every record *not yet
    /// appended* when this call starts carries an epoch `> horizon` — so
    /// records racing in during the sync phase are beyond the horizon and
    /// need not be on the device for the watermark to advance.
    pub fn group_flush(&self, horizon: u64) {
        let _gate = self.flush_gate.lock();
        if self.is_failed() {
            return; // poisoned: the watermark stays frozen
        }
        // Phase 1 — drain each shard's buffer to the OS (brief lock).
        let mut to_sync: Vec<File> = Vec::new();
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            self.drain(&mut s, false);
            if self.policy != FsyncPolicy::Never && s.wrote_since_fsync {
                match s.file.try_clone() {
                    Ok(f) => {
                        to_sync.push(f);
                        s.wrote_since_fsync = false;
                    }
                    Err(e) => self.poison("shard handle clone", &e),
                }
            }
        }
        // Phase 2 — force the drained bytes, no shard lock held.
        for f in to_sync {
            if let Err(e) = f.sync_data() {
                self.poison("shard fsync", &e);
            } else {
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        if self.is_failed() {
            return; // a failed drain/sync must not advance the watermark
        }
        // Phase 3 — advance the per-shard watermarks and the global one.
        let mut min_flushed = u64::MAX;
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            s.flushed_epoch = s.flushed_epoch.max(horizon);
            min_flushed = min_flushed.min(s.flushed_epoch);
        }
        if min_flushed == u64::MAX {
            return;
        }
        let prev = self.durable.fetch_max(min_flushed, Ordering::AcqRel);
        if min_flushed > prev {
            if let Err(e) = self.write_meta(self.durable_epoch()) {
                self.poison("meta write", &e);
            }
        }
    }

    /// Clean shutdown: the caller guarantees no worker is mid-commit, so
    /// everything buffered belongs to epochs `≤ current_epoch` and the
    /// whole log can be declared durable through it.
    pub fn flush_all_quiescent(&self, current_epoch: u64) {
        self.group_flush(current_epoch);
    }

    /// Drain one shard's buffer to the OS, optionally fsyncing. I/O
    /// failure poisons the set instead of panicking (a panic would be
    /// swallowed in the flusher thread or kill a worker mid-commit).
    fn drain(&self, shard: &mut WalShard, sync: bool) {
        if !shard.buf.is_empty() {
            if let Err(e) = shard.file.write_all(&shard.buf) {
                shard.buf.clear();
                self.poison("shard write", &e);
                return;
            }
            shard.buf.clear();
            shard.wrote_since_fsync = true;
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        if sync && shard.wrote_since_fsync {
            if let Err(e) = shard.file.sync_data() {
                self.poison("shard fsync", &e);
                return;
            }
            shard.wrote_since_fsync = false;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Persist the durable epoch: write-to-temp, sync, rename — a crash
    /// leaves either the old or the new meta, never a torn one.
    fn write_meta(&self, durable: u64) -> std::io::Result<()> {
        let tmp = self.dir.join(format!("{META_FILE}.tmp"));
        let mut f = File::create(&tmp)?;
        writeln!(f, "durable_epoch={durable}")?;
        if self.policy != FsyncPolicy::Never {
            f.sync_data()?;
        }
        drop(f);
        std::fs::rename(&tmp, self.dir.join(META_FILE))
    }
}

/// Path of `worker`'s shard under `dir`.
pub fn shard_path(dir: &Path, worker: u32) -> PathBuf {
    dir.join(format!("{SHARD_PREFIX}{worker}{SHARD_SUFFIX}"))
}

/// Read the persisted durable epoch, if a meta file exists and parses.
pub fn read_meta(dir: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(dir.join(META_FILE)).ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix("durable_epoch="))
        .and_then(|v| v.trim().parse().ok())
}

/// Append one framed record to `out`.
fn encode_record(out: &mut Vec<u8>, epoch: u64, seq: u64, ops: &[LogOp<'_>]) {
    let frame_at = out.len();
    out.extend_from_slice(&[0u8; FRAME_LEN]); // len + crc, patched below
    let body_at = out.len();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match *op {
            LogOp::Put { table, key, image } => {
                out.push(1);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(image.len() as u32).to_le_bytes());
                out.extend_from_slice(image);
            }
            LogOp::Del { table, key } => {
                out.push(2);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
        }
    }
    let body_len = (out.len() - body_at) as u32;
    let crc = hash_bytes(&out[body_at..]);
    out[frame_at..frame_at + 4].copy_from_slice(&body_len.to_le_bytes());
    out[frame_at + 4..frame_at + FRAME_LEN].copy_from_slice(&crc.to_le_bytes());
}

/// Little-endian field readers over a byte cursor; `None` = torn.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    take(buf, 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    take(buf, 8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

/// Decode one record body (after its frame validated).
fn decode_body(mut body: &[u8]) -> Option<(u64, u64, Vec<RecOp>)> {
    let epoch = take_u64(&mut body)?;
    let seq = take_u64(&mut body)?;
    let nops = take_u32(&mut body)?;
    let mut ops = Vec::with_capacity(nops as usize);
    for _ in 0..nops {
        let kind = take(&mut body, 1)?[0];
        let table = take_u32(&mut body)?;
        let key = take_u64(&mut body)?;
        match kind {
            1 => {
                let len = take_u32(&mut body)? as usize;
                let image = take(&mut body, len)?.to_vec();
                ops.push(RecOp::Put { table, key, image });
            }
            2 => ops.push(RecOp::Del { table, key }),
            _ => return None,
        }
    }
    if !body.is_empty() {
        return None; // trailing garbage inside a "valid" frame
    }
    Some((epoch, seq, ops))
}

/// Decode one shard file: every complete, checksum-valid record of the
/// prefix. Stops (marking `torn`) at the first bad frame — framing is
/// lost from there on, which is exactly the crash-tail case.
pub fn scan_shard(path: &Path) -> std::io::Result<ShardScan> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let mut scan = ShardScan {
        path: path.to_path_buf(),
        worker: 0,
        records: Vec::new(),
        torn: false,
        valid_len: 0,
    };
    if raw.len() < HEADER_LEN as usize || &raw[..8] != FILE_MAGIC {
        scan.torn = !raw.is_empty();
        return Ok(scan);
    }
    scan.worker = u32::from_le_bytes(raw[12..16].try_into().unwrap());
    let mut off = HEADER_LEN as usize;
    scan.valid_len = off as u64;
    while off < raw.len() {
        let mut cur = &raw[off..];
        let Some(len) = take_u32(&mut cur) else {
            scan.torn = true;
            break;
        };
        let Some(crc) = take_u64(&mut cur) else {
            scan.torn = true;
            break;
        };
        if len > MAX_BODY || cur.len() < len as usize {
            scan.torn = true;
            break;
        }
        let body = &cur[..len as usize];
        if hash_bytes(body) != crc {
            scan.torn = true;
            break;
        }
        let Some((epoch, seq, ops)) = decode_body(body) else {
            scan.torn = true;
            break;
        };
        off += FRAME_LEN + len as usize;
        scan.valid_len = off as u64;
        scan.records.push(Record {
            epoch,
            seq,
            end_offset: off as u64,
            ops,
        });
    }
    Ok(scan)
}

/// Decode every shard under `dir`, sorted by file name (deterministic).
pub fn scan_dir(dir: &Path) -> std::io::Result<Vec<ShardScan>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(SHARD_PREFIX) && n.ends_with(SHARD_SUFFIX))
        })
        .collect();
    paths.sort();
    paths.iter().map(|p| scan_shard(p)).collect()
}

/// Truncate a shard to `len` bytes (recovery drops the non-durable or
/// torn tail so later appends and re-recoveries never see it).
pub fn truncate_shard(path: &Path, len: u64) -> std::io::Result<()> {
    OpenOptions::new().write(true).open(path)?.set_len(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("abyss-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn put<'a>(table: TableId, key: Key, image: &'a [u8]) -> LogOp<'a> {
        LogOp::Put { table, key, image }
    }

    #[test]
    fn append_flush_scan_round_trips() {
        let dir = tmp_dir("roundtrip");
        let wal = WalSet::open(&dir, 2, FsyncPolicy::Group, 1 << 20).unwrap();
        wal.append_commit(
            0,
            1,
            10,
            &[put(0, 7, b"seven"), LogOp::Del { table: 1, key: 9 }],
        );
        wal.append_commit(1, 1, 11, &[put(0, 8, b"eight!")]);
        wal.append_commit(0, 2, 12, &[put(2, 1, b"")]);
        wal.group_flush(2);
        assert_eq!(wal.durable_epoch(), 2);
        assert_eq!(read_meta(&dir), Some(2));
        let scans = scan_dir(&dir).unwrap();
        assert_eq!(scans.len(), 2);
        assert!(scans.iter().all(|s| !s.torn));
        let s0 = &scans[0];
        assert_eq!(s0.worker, 0);
        assert_eq!(s0.records.len(), 2);
        assert_eq!(s0.records[0].epoch, 1);
        assert_eq!(s0.records[0].seq, 10);
        assert_eq!(
            s0.records[0].ops,
            vec![
                RecOp::Put {
                    table: 0,
                    key: 7,
                    image: b"seven".to_vec()
                },
                RecOp::Del { table: 1, key: 9 },
            ]
        );
        assert_eq!(scans[1].records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let wal = WalSet::open(&dir, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        wal.append_commit(0, 1, 1, &[put(0, 1, b"alpha")]);
        wal.append_commit(0, 1, 2, &[put(0, 2, b"beta")]);
        wal.group_flush(1);
        // Simulate a crash mid-append: garbage after the valid prefix.
        let path = shard_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 7]).unwrap();
        drop(f);
        let scan = scan_shard(&path).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 2);
        // Truncating at valid_len makes the shard clean again.
        truncate_shard(&path, scan.valid_len).unwrap();
        let rescan = scan_shard(&path).unwrap();
        assert!(!rescan.torn);
        assert_eq!(rescan.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let dir = tmp_dir("corrupt");
        let wal = WalSet::open(&dir, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        wal.append_commit(0, 1, 1, &[put(0, 1, b"payload")]);
        wal.group_flush(1);
        let path = shard_path(&dir, 0);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01; // flip a body byte
        std::fs::write(&path, &raw).unwrap();
        let scan = scan_shard(&path).unwrap();
        assert!(scan.torn);
        assert!(scan.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_epoch_is_min_over_shards_and_monotone() {
        let dir = tmp_dir("watermark");
        let wal = WalSet::open(&dir, 3, FsyncPolicy::Never, 1 << 20).unwrap();
        wal.append_commit(2, 4, 1, &[put(0, 1, b"x")]);
        wal.group_flush(3);
        assert_eq!(wal.durable_epoch(), 3);
        // A lower horizon cannot move the watermark backwards.
        wal.group_flush(1);
        assert_eq!(wal.durable_epoch(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_commit_policy_is_durable_at_append() {
        let dir = tmp_dir("percommit");
        let wal = WalSet::open(&dir, 1, FsyncPolicy::EveryCommit, 1 << 20).unwrap();
        wal.append_commit(0, 5, 1, &[put(0, 1, b"forced")]);
        // No group flush: the record is already on disk.
        let scan = scan_shard(&shard_path(&dir, 0)).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(wal.stats().fsyncs >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_durable_epoch_and_appends() {
        let dir = tmp_dir("reopen");
        {
            let wal = WalSet::open(&dir, 1, FsyncPolicy::Group, 1 << 20).unwrap();
            wal.append_commit(0, 1, 1, &[put(0, 1, b"first")]);
            wal.group_flush(1);
        }
        {
            let wal = WalSet::open(&dir, 1, FsyncPolicy::Group, 1 << 20).unwrap();
            assert_eq!(wal.durable_epoch(), 1);
            wal.append_commit(0, 2, 2, &[put(0, 2, b"second")]);
            wal.group_flush(2);
            assert_eq!(wal.durable_epoch(), 2);
        }
        let scan = scan_shard(&shard_path(&dir, 0)).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].epoch, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn early_drain_bounds_the_buffer_without_advancing_durability() {
        let dir = tmp_dir("earlydrain");
        // Tiny group_max_bytes: every append drains to the OS...
        let wal = WalSet::open(&dir, 1, FsyncPolicy::Group, 8).unwrap();
        wal.append_commit(0, 1, 1, &[put(0, 1, &[7u8; 64])]);
        assert!(wal.stats().flushes >= 1);
        // ...but durability still waits for the group fence.
        assert_eq!(wal.durable_epoch(), 0);
        wal.group_flush(1);
        assert_eq!(wal.durable_epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
