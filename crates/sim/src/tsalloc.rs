//! Simulated timestamp allocation (§4.3, Fig. 6).
//!
//! Centralized methods (mutex, atomic, batched atomic, hardware counter)
//! are modeled as a single server: a request issued at time `t` completes
//! at `max(t + latency, server_free) + service`, and the server is busy
//! for `service` cycles per request. This captures both the latency a
//! requester sees and the *throughput ceiling* `1/service` that makes
//! Fig. 6 flatten:
//!
//! * **mutex** — service ≈ 1000 cycles (lock handoff across the chip)
//!   ⇒ ~1M ts/s regardless of core count;
//! * **atomic** — service = one cache-line round trip, which grows with
//!   the mesh (~100 cycles at 1024 cores ⇒ ~10M ts/s); requesters also
//!   pay the trip;
//! * **batched atomic** — same server, but one trip hands out `batch`
//!   timestamps; restarts *reuse the local batch* — the Fig. 7b pathology
//!   (a restarted transaction keeps drawing timestamps older than the
//!   conflict that killed it);
//! * **clock** — fully local: latency = a clock read, no server;
//! * **hardware** — a counter at the chip center: service = 1 cycle
//!   (⇒ 1B ts/s ceiling), latency = round trip to the center.

use abyss_common::{Ts, TsMethod};

use crate::cost::BoundCosts;
use crate::kernel::Cycles;

/// Outcome of one allocation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsGrant {
    /// The timestamp.
    pub ts: Ts,
    /// When the requester has it in hand.
    pub ready_at: Cycles,
}

/// The simulated allocator.
#[derive(Debug)]
pub struct TsAllocSim {
    method: TsMethod,
    counter: u64,
    server_free: Cycles,
    service: u64,
    latency: u64,
    /// Per-core batch cache: (next, end).
    batches: Vec<(u64, u64)>,
    /// Total timestamps handed out.
    pub allocated: u64,
}

impl TsAllocSim {
    /// Build the allocator for `method` on the chip described by `costs`.
    pub fn new(method: TsMethod, costs: &BoundCosts, cores: u32) -> Self {
        let m = &costs.model;
        let (service, latency) = match method {
            TsMethod::Mutex => (m.mutex_service, costs.round_trip()),
            TsMethod::Atomic | TsMethod::Batched { .. } => {
                // The fetch-add serializes on the cache-line transfer.
                (m.atomic_base + costs.round_trip(), costs.round_trip())
            }
            TsMethod::Clock => (0, m.clock_read),
            TsMethod::Hardware => (1, costs.mesh.center_round_trip()),
        };
        Self {
            method,
            counter: 0,
            server_free: 0,
            service,
            latency,
            batches: vec![(0, 0); cores as usize],
            allocated: 0,
        }
    }

    /// The configured method.
    pub fn method(&self) -> TsMethod {
        self.method
    }

    /// Allocate a timestamp for `core` at time `now`.
    pub fn alloc(&mut self, core: u32, now: Cycles) -> TsGrant {
        self.allocated += 1;
        match self.method {
            TsMethod::Clock => {
                // Decentralized: unique by construction in a real system
                // (clock ‖ core id); the shared counter here only provides
                // a convenient total order for the CC logic.
                self.counter += 1;
                TsGrant {
                    ts: self.counter,
                    ready_at: now + self.latency,
                }
            }
            TsMethod::Batched { batch } => {
                let b = &mut self.batches[core as usize];
                if b.0 >= b.1 {
                    let start = self.counter;
                    self.counter += u64::from(batch);
                    *b = (start + 1, start + u64::from(batch) + 1);
                    let done = (now + self.latency).max(self.server_free) + self.service;
                    self.server_free = (now + self.latency).max(self.server_free) + self.service;
                    let ts = self.batches[core as usize].0;
                    self.batches[core as usize].0 += 1;
                    return TsGrant { ts, ready_at: done };
                }
                let ts = b.0;
                b.0 += 1;
                // Local hand-out: just the loop overhead.
                TsGrant {
                    ts,
                    ready_at: now + 1,
                }
            }
            _ => {
                self.counter += 1;
                let start = (now + self.latency).max(self.server_free);
                let done = start + self.service;
                self.server_free = done;
                TsGrant {
                    ts: self.counter,
                    ready_at: done,
                }
            }
        }
    }
}

/// Run the §4.3 micro-benchmark: every core allocates timestamps in a
/// tight loop for `duration` cycles. Returns timestamps per second.
pub fn microbench(method: TsMethod, cores: u32, costs: &BoundCosts, duration: Cycles) -> f64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut alloc = TsAllocSim::new(method, costs, cores);
    let loop_overhead = costs.model.clock_read.max(10);
    // Per-core next-request times, processed globally in time order.
    let mut ready: BinaryHeap<Reverse<(Cycles, u32)>> =
        (0..cores).map(|c| Reverse((0, c))).collect();
    let mut count = 0u64;
    while let Some(Reverse((t, core))) = ready.pop() {
        if t >= duration {
            break;
        }
        let grant = alloc.alloc(core, t);
        ready.push(Reverse((grant.ready_at + loop_overhead, core)));
        // Count completions inside the window, not issues: a saturated
        // server (mutex) queues far beyond the horizon.
        if grant.ready_at <= duration {
            count += 1;
        }
    }
    count as f64 / crate::cost::cycles_to_secs(duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn costs(cores: u32) -> BoundCosts {
        BoundCosts::new(CostModel::default(), cores)
    }

    #[test]
    fn timestamps_are_unique_and_increasing_per_core() {
        for method in TsMethod::FIG6 {
            let c = costs(16);
            let mut a = TsAllocSim::new(method, &c, 16);
            let mut seen = std::collections::HashSet::new();
            let mut now = 0;
            for core in 0..16u32 {
                let mut last = 0;
                for _ in 0..50 {
                    let g = a.alloc(core, now);
                    assert!(g.ts > last, "{method}: per-core ts must increase");
                    assert!(seen.insert(g.ts), "{method}: duplicate ts {}", g.ts);
                    assert!(g.ready_at >= now);
                    last = g.ts;
                    now += 10;
                }
            }
        }
    }

    #[test]
    fn server_serializes_atomic_requests() {
        let c = costs(1024);
        let mut a = TsAllocSim::new(TsMethod::Atomic, &c, 1024);
        // Two simultaneous requests: the second finishes a service later.
        let g1 = a.alloc(0, 0);
        let g2 = a.alloc(1, 0);
        assert!(g2.ready_at > g1.ready_at);
        assert_eq!(
            g2.ready_at - g1.ready_at,
            c.model.atomic_base + c.round_trip()
        );
    }

    #[test]
    fn clock_does_not_serialize() {
        let c = costs(1024);
        let mut a = TsAllocSim::new(TsMethod::Clock, &c, 1024);
        let g1 = a.alloc(0, 0);
        let g2 = a.alloc(1, 0);
        assert_eq!(
            g1.ready_at, g2.ready_at,
            "clock allocations are independent"
        );
    }

    #[test]
    fn batched_mostly_local() {
        let c = costs(64);
        let mut a = TsAllocSim::new(TsMethod::Batched { batch: 8 }, &c, 64);
        let g1 = a.alloc(0, 0); // fetches a batch: pays the trip
        let g2 = a.alloc(0, g1.ready_at); // local
        assert_eq!(g2.ready_at, g1.ready_at + 1);
    }

    #[test]
    fn fig6_ceilings_have_the_papers_shape() {
        // At 1024 cores: mutex ≈ 1M, atomic ≈ 8-12M, hardware ≈ 1B ts/s,
        // clock far above hardware.
        let c = costs(1024);
        let dur = 300_000;
        let mutex = microbench(TsMethod::Mutex, 1024, &c, dur);
        let atomic = microbench(TsMethod::Atomic, 1024, &c, dur);
        let hw = microbench(TsMethod::Hardware, 1024, &c, dur);
        let clock = microbench(TsMethod::Clock, 1024, &c, dur);
        assert!((0.5e6..2e6).contains(&mutex), "mutex {mutex:.0}");
        assert!((5e6..20e6).contains(&atomic), "atomic {atomic:.0}");
        assert!((0.5e9..1.5e9).contains(&hw), "hardware {hw:.0}");
        assert!(clock > hw, "clock {clock:.0} should beat hardware {hw:.0}");
    }

    #[test]
    fn atomic_peaks_then_declines_with_core_count() {
        // Fig. 6: atomic peaks ~30M at small core counts, declines toward
        // ~10M at 1024 as the round trip grows.
        let small = microbench(TsMethod::Atomic, 8, &costs(8), 500_000);
        let large = microbench(TsMethod::Atomic, 1024, &costs(1024), 500_000);
        assert!(
            small > large,
            "atomic should decline: {small:.0} vs {large:.0}"
        );
        assert!(
            (20e6..60e6).contains(&small),
            "small-core atomic {small:.0}"
        );
    }
}
