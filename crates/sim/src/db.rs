//! The simulated database: per-tuple concurrency-control metadata without
//! payloads.
//!
//! The simulator never materializes row bytes — tuple *sizes* drive the
//! cost model (copy costs) while the 20M-row YCSB table stays lazy: a
//! tuple's metadata is created on first touch, so memory scales with the
//! touched working set, not the paper's 20 GB (the substitution documented
//! in `DESIGN.md`). Hot columns that feed back into transaction logic
//! (TPC-C's `D_NEXT_O_ID`) are modeled by one `counter` per tuple.

use std::collections::VecDeque;

use abyss_common::fxhash::FxHashMap;
use abyss_common::{CcScheme, CoreId, Key, Ts, TxnId};

/// Lock mode (2PL schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Shared.
    S,
    /// Exclusive.
    X,
}

impl Mode {
    /// Compatible iff both shared.
    #[inline]
    pub fn compatible(self, other: Mode) -> bool {
        self == Mode::S && other == Mode::S
    }
}

/// A lock holder.
#[derive(Debug, Clone, Copy)]
pub struct SimOwner {
    /// Holding transaction.
    pub txn: TxnId,
    /// Its mode.
    pub mode: Mode,
    /// Its timestamp (WAIT_DIE).
    pub ts: Ts,
}

/// A queued lock request.
#[derive(Debug, Clone, Copy)]
pub struct SimWaiter {
    /// Waiting transaction.
    pub txn: TxnId,
    /// Its core.
    pub core: CoreId,
    /// Requested mode.
    pub mode: Mode,
    /// Its timestamp (WAIT_DIE ordering).
    pub ts: Ts,
}

/// 2PL per-tuple state.
#[derive(Debug, Default)]
pub struct LockCc {
    /// Current holders.
    pub owners: Vec<SimOwner>,
    /// Waiting requests (DL_DETECT: FIFO; WAIT_DIE: ts-ascending).
    pub waiters: VecDeque<SimWaiter>,
}

impl LockCc {
    /// Compatible with every owner other than `me`?
    pub fn compatible(&self, mode: Mode, me: TxnId) -> bool {
        self.owners
            .iter()
            .all(|o| o.txn == me || o.mode.compatible(mode))
    }

    /// Is `txn` an owner at `mode` (or stronger)?
    pub fn owns(&self, txn: TxnId, mode: Mode) -> bool {
        self.owners
            .iter()
            .any(|o| o.txn == txn && (o.mode == mode || o.mode == Mode::X))
    }

    /// Grant queued waiters that became compatible; returns their cores.
    pub fn grant_ready(&mut self) -> Vec<CoreId> {
        let mut woken = Vec::new();
        while let Some(w) = self.waiters.front().copied() {
            if !self.compatible(w.mode, w.txn) {
                break;
            }
            self.waiters.pop_front();
            self.owners.push(SimOwner {
                txn: w.txn,
                mode: w.mode,
                ts: w.ts,
            });
            woken.push(w.core);
        }
        woken
    }

    /// Remove `txn` everywhere.
    pub fn remove(&mut self, txn: TxnId) {
        self.owners.retain(|o| o.txn != txn);
        self.waiters.retain(|w| w.txn != txn);
    }
}

/// Basic T/O per-tuple state.
#[derive(Debug, Default)]
pub struct TsCc {
    /// Last committed write timestamp.
    pub wts: Ts,
    /// Largest read timestamp.
    pub rts: Ts,
    /// Pending prewrites `(ts, txn)`.
    pub prewrites: Vec<(Ts, TxnId)>,
    /// Cores parked on a pending prewrite.
    pub waiters: Vec<CoreId>,
}

impl TsCc {
    /// Does another transaction hold a prewrite below `ts`?
    pub fn pending_below(&self, ts: Ts, me: TxnId) -> bool {
        self.prewrites.iter().any(|&(p, t)| p < ts && t != me)
    }
}

/// MVCC per-tuple state: committed `(wts, rts)` pairs, oldest first.
#[derive(Debug, Default)]
pub struct MvccCc {
    /// Committed versions (no payloads — the cost model charges copies).
    pub versions: VecDeque<(Ts, Ts)>,
    /// Pending prewrites `(ts, txn)`.
    pub prewrites: Vec<(Ts, TxnId)>,
    /// Cores parked on a pending prewrite.
    pub waiters: Vec<CoreId>,
}

impl MvccCc {
    /// Newest version index with `wts <= ts`.
    pub fn visible(&self, ts: Ts) -> Option<usize> {
        self.versions.iter().rposition(|&(wts, _)| wts <= ts)
    }

    /// Another txn's prewrite in `(after, ts)`?
    pub fn pending_between(&self, after: Ts, ts: Ts, me: TxnId) -> bool {
        self.prewrites
            .iter()
            .any(|&(p, t)| p > after && p < ts && t != me)
    }
}

/// OCC per-tuple state: a version counter plus a validation latch.
#[derive(Debug, Default)]
pub struct OccCc {
    /// Bumped by every committed write.
    pub version: u64,
    /// Holder of the validation latch.
    pub locked_by: Option<TxnId>,
    /// Cores parked on the latch.
    pub waiters: Vec<CoreId>,
}

/// Scheme-specific tuple state.
#[derive(Debug)]
pub enum TupleCc {
    /// 2PL (DL_DETECT / NO_WAIT / WAIT_DIE).
    Lock(LockCc),
    /// TIMESTAMP.
    Ts(TsCc),
    /// MVCC.
    Mvcc(MvccCc),
    /// OCC.
    Occ(OccCc),
    /// H-STORE (partition locks only — no per-tuple state).
    Plain,
}

/// One simulated tuple.
#[derive(Debug)]
pub struct Tuple {
    /// The tuple's hot `u64` column (TPC-C counters; YCSB ignores it).
    pub counter: u64,
    /// CC state.
    pub cc: TupleCc,
}

/// Static per-table information.
#[derive(Debug, Clone)]
pub struct SimTable {
    /// Row size in bytes (drives copy costs).
    pub row_size: usize,
    /// Initial hot-column value for fresh tuples (districts: 3000).
    pub counter_init: u64,
}

/// The simulated database.
#[derive(Debug)]
pub struct SimDb {
    scheme: CcScheme,
    tables: Vec<SimTable>,
    tuples: Vec<FxHashMap<Key, Tuple>>,
}

impl SimDb {
    /// Empty database over `tables` for `scheme`.
    pub fn new(scheme: CcScheme, tables: Vec<SimTable>) -> Self {
        let tuples = tables.iter().map(|_| FxHashMap::default()).collect();
        Self {
            scheme,
            tables,
            tuples,
        }
    }

    /// Row size of `table`.
    pub fn row_size(&self, table: u32) -> usize {
        self.tables[table as usize].row_size
    }

    fn fresh_cc(scheme: CcScheme) -> TupleCc {
        match scheme {
            CcScheme::DlDetect | CcScheme::NoWait | CcScheme::WaitDie => {
                TupleCc::Lock(LockCc::default())
            }
            CcScheme::Timestamp => TupleCc::Ts(TsCc::default()),
            CcScheme::Mvcc => {
                let mut m = MvccCc::default();
                m.versions.push_back((0, 0));
                TupleCc::Mvcc(m)
            }
            // SILO and TICTOC share OCC's per-tuple shape: the version
            // counter stands in for the epoch-tagged TID word (SILO) and
            // the wts/rts word (TICTOC) — the cost model, not the payload,
            // is what distinguishes the three in the simulator.
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => TupleCc::Occ(OccCc::default()),
            CcScheme::HStore => TupleCc::Plain,
        }
    }

    /// Get (lazily creating) the tuple for `(table, key)`.
    pub fn tuple(&mut self, table: u32, key: Key) -> &mut Tuple {
        let init = self.tables[table as usize].counter_init;
        let scheme = self.scheme;
        self.tuples[table as usize]
            .entry(key)
            .or_insert_with(|| Tuple {
                counter: init,
                cc: Self::fresh_cc(scheme),
            })
    }

    /// Does `(table, key)` already have materialized state?
    pub fn exists(&self, table: u32, key: Key) -> bool {
        self.tuples[table as usize].contains_key(&key)
    }

    /// Create a tuple for an insert; duplicate creation is a CC bug the
    /// schemes prevent, surfaced loudly in debug builds.
    pub fn create(&mut self, table: u32, key: Key, creation_ts: Ts) {
        debug_assert!(
            !self.exists(table, key),
            "duplicate simulated insert: table {table} key {key}"
        );
        let scheme = self.scheme;
        let init = self.tables[table as usize].counter_init;
        let mut tuple = Tuple {
            counter: init,
            cc: Self::fresh_cc(scheme),
        };
        if let TupleCc::Mvcc(m) = &mut tuple.cc {
            m.versions[0] = (creation_ts, creation_ts);
        }
        if let TupleCc::Ts(t) = &mut tuple.cc {
            t.wts = creation_ts;
            t.rts = creation_ts;
        }
        self.tuples[table as usize].insert(key, tuple);
    }

    /// Remove a tuple (abort of an eagerly-applied insert).
    pub fn destroy(&mut self, table: u32, key: Key) {
        self.tuples[table as usize].remove(&key);
    }

    /// Tuples materialized so far (diagnostics).
    pub fn materialized(&self) -> usize {
        self.tuples.iter().map(|m| m.len()).sum()
    }
}

/// One H-STORE partition lock.
#[derive(Debug, Default)]
pub struct SimPart {
    /// Current owner.
    pub busy: Option<TxnId>,
    /// Waiting `(ts, txn, core)`, kept ts-ascending (oldest first) — the
    /// paper's "grants access if the transaction has the oldest timestamp
    /// in the queue".
    pub queue: Vec<(Ts, TxnId, CoreId)>,
}

impl SimPart {
    /// Enqueue keeping ts order.
    pub fn enqueue(&mut self, ts: Ts, txn: TxnId, core: CoreId) {
        let pos = self
            .queue
            .iter()
            .position(|&(t, _, _)| t > ts)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, (ts, txn, core));
    }

    /// Release by `txn`; grants the oldest waiter and returns its core.
    pub fn release(&mut self, txn: TxnId) -> Option<CoreId> {
        debug_assert_eq!(self.busy, Some(txn));
        if self.queue.is_empty() {
            self.busy = None;
            None
        } else {
            let (_, next_txn, core) = self.queue.remove(0);
            self.busy = Some(next_txn);
            Some(core)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(scheme: CcScheme) -> SimDb {
        SimDb::new(
            scheme,
            vec![
                SimTable {
                    row_size: 1008,
                    counter_init: 0,
                },
                SimTable {
                    row_size: 95,
                    counter_init: 3000,
                },
            ],
        )
    }

    #[test]
    fn tuples_materialize_lazily_with_table_init() {
        let mut d = db(CcScheme::Timestamp);
        assert_eq!(d.materialized(), 0);
        assert_eq!(d.tuple(1, 7).counter, 3000);
        assert_eq!(d.tuple(0, 7).counter, 0);
        assert_eq!(d.materialized(), 2);
    }

    #[test]
    fn scheme_determines_cc_variant() {
        let mut d = db(CcScheme::Mvcc);
        match &d.tuple(0, 1).cc {
            TupleCc::Mvcc(m) => assert_eq!(m.versions.len(), 1),
            other => panic!("wrong variant {other:?}"),
        }
        let mut d = db(CcScheme::NoWait);
        assert!(matches!(d.tuple(0, 1).cc, TupleCc::Lock(_)));
    }

    #[test]
    fn lock_grant_order_is_fifo_compatible() {
        let mut q = LockCc {
            owners: vec![SimOwner {
                txn: 1,
                mode: Mode::X,
                ts: 0,
            }],
            ..Default::default()
        };
        q.waiters.push_back(SimWaiter {
            txn: 2,
            core: 2,
            mode: Mode::S,
            ts: 0,
        });
        q.waiters.push_back(SimWaiter {
            txn: 3,
            core: 3,
            mode: Mode::S,
            ts: 0,
        });
        q.waiters.push_back(SimWaiter {
            txn: 4,
            core: 4,
            mode: Mode::X,
            ts: 0,
        });
        assert!(q.grant_ready().is_empty(), "X owner blocks everyone");
        q.remove(1);
        // Both readers granted together; writer still blocked behind them.
        assert_eq!(q.grant_ready(), vec![2, 3]);
        assert_eq!(q.owners.len(), 2);
        q.remove(2);
        assert!(q.grant_ready().is_empty());
        q.remove(3);
        assert_eq!(q.grant_ready(), vec![4]);
    }

    #[test]
    fn ts_cc_pending_ignores_self() {
        let mut t = TsCc::default();
        t.prewrites.push((5, 77));
        assert!(t.pending_below(10, 1));
        assert!(!t.pending_below(10, 77), "own prewrite is not a conflict");
        assert!(!t.pending_below(3, 1));
    }

    #[test]
    fn mvcc_visibility_and_pending() {
        let mut m = MvccCc {
            versions: [(0, 0), (10, 12)].into(),
            ..Default::default()
        };
        assert_eq!(m.visible(5), Some(0));
        assert_eq!(m.visible(10), Some(1));
        m.prewrites.push((7, 9));
        assert!(m.pending_between(0, 8, 1));
        assert!(!m.pending_between(0, 6, 1));
    }

    #[test]
    fn partition_grants_oldest_first() {
        let mut p = SimPart {
            busy: Some(1),
            ..Default::default()
        };
        p.enqueue(30, 3, 3);
        p.enqueue(10, 2, 2);
        p.enqueue(20, 4, 4);
        assert_eq!(p.release(1), Some(2), "oldest ts wins");
        assert_eq!(p.busy, Some(2));
        assert_eq!(p.release(2), Some(4));
        assert_eq!(p.release(4), Some(3));
        assert_eq!(p.release(3), None);
        assert_eq!(p.busy, None);
    }

    #[test]
    fn create_and_destroy() {
        let mut d = db(CcScheme::NoWait);
        d.create(0, 99, 5);
        assert!(d.exists(0, 99));
        d.destroy(0, 99);
        assert!(!d.exists(0, 99));
    }
}
