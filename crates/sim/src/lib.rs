//! # abyss-sim
//!
//! A deterministic many-core CPU simulator — the substitute for MIT's
//! Graphite (§3.1) that lets the abyss DBMS scale to 1024 cores on one
//! host.
//!
//! Where Graphite executes real x86 instructions with relaxed cycle
//! accounting, `abyss-sim` executes the *DBMS algorithms themselves*
//! (lock queues, waits-for graphs, timestamp checks, version chains,
//! validation) as per-core state machines over a discrete-event kernel,
//! charging cycle costs from an explicit model of the paper's target
//! architecture: a tiled CMP with a 2-D mesh NoC (2 cycles/hop, 1 GHz)
//! and shared NUCA L2 ([`topology`], [`cost`]).
//!
//! * [`kernel`] — the event queue (deterministic tie-breaking).
//! * [`tsalloc`] — the five timestamp-allocation methods of §4.3/Fig. 6.
//! * [`db`] — per-tuple CC metadata for all seven schemes, lazily
//!   materialized so the paper's 20M-row YCSB table costs only its
//!   touched working set.
//! * [`exec`] — the per-core transaction state machines.
//! * [`driver`] — warmup, measurement, and the merged six-category time
//!   breakdown of §3.2.
//!
//! Runs are bit-reproducible: same [`config::SimConfig`] + generators ⇒
//! identical statistics.

pub mod config;
pub mod cost;
pub mod db;
pub mod driver;
pub mod exec;
pub mod kernel;
pub mod topology;
pub mod tsalloc;

pub use config::{SimConfig, SimDurability};
pub use cost::{CostModel, FREQ_HZ};
pub use db::{SimDb, SimTable};
pub use driver::{run_sim, run_sim_full, SimReport};
pub use tsalloc::microbench;
