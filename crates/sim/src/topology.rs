//! The target architecture's interconnect: a 2-D mesh network-on-chip
//! (§3.1, Fig. 2). Tiles are arranged in a `k × k` grid (k rounded up to
//! cover the core count), routed X-then-Y, with each hop costing two
//! cycles at 1 GHz.

/// The 2-D mesh of tiles.
#[derive(Debug, Clone, Copy)]
pub struct Mesh {
    /// Grid dimension (`k`), so the mesh holds `k²` tiles.
    pub dim: u32,
    /// Cycles per hop (paper: 2).
    pub hop_cycles: u64,
}

impl Mesh {
    /// The smallest square mesh covering `cores` tiles.
    pub fn for_cores(cores: u32) -> Self {
        let dim = (cores as f64).sqrt().ceil() as u32;
        Self {
            dim: dim.max(1),
            hop_cycles: 2,
        }
    }

    /// Tile coordinates of core `c`.
    #[inline]
    pub fn coords(&self, core: u32) -> (u32, u32) {
        (core % self.dim, core / self.dim)
    }

    /// Manhattan hop count between two cores.
    #[inline]
    pub fn hops(&self, a: u32, b: u32) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        u64::from(ax.abs_diff(bx)) + u64::from(ay.abs_diff(by))
    }

    /// One-way latency between two cores in cycles.
    #[inline]
    pub fn latency(&self, a: u32, b: u32) -> u64 {
        self.hops(a, b) * self.hop_cycles
    }

    /// Average hop distance between two uniformly random tiles — the
    /// standard `2k/3` result for a `k × k` mesh (used for costs that
    /// depend on a *random* remote tile, like NUCA L2 slices).
    #[inline]
    pub fn avg_hops(&self) -> f64 {
        2.0 * f64::from(self.dim) / 3.0
    }

    /// Average one-way latency to a random tile, cycles.
    #[inline]
    pub fn avg_latency(&self) -> u64 {
        (self.avg_hops() * self.hop_cycles as f64).round() as u64
    }

    /// Round-trip latency between a random pair of tiles, cycles — the
    /// cost of pulling a contended cache line across the chip.
    #[inline]
    pub fn avg_round_trip(&self) -> u64 {
        2 * self.avg_latency()
    }

    /// Hops from a corner-ish tile to the chip center (the hardware
    /// timestamp counter sits at the center so the *average* distance is
    /// `k/2`, §4.3).
    #[inline]
    pub fn avg_hops_to_center(&self) -> f64 {
        f64::from(self.dim) / 2.0
    }

    /// Round trip to the central hardware counter, cycles.
    #[inline]
    pub fn center_round_trip(&self) -> u64 {
        (2.0 * self.avg_hops_to_center() * self.hop_cycles as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_covers_core_count() {
        assert_eq!(Mesh::for_cores(1).dim, 1);
        assert_eq!(Mesh::for_cores(64).dim, 8);
        assert_eq!(Mesh::for_cores(65).dim, 9);
        assert_eq!(Mesh::for_cores(1024).dim, 32);
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::for_cores(64); // 8x8
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 7), 7); // same row
        assert_eq!(m.hops(0, 63), 14); // opposite corner
        assert_eq!(m.latency(0, 63), 28);
    }

    #[test]
    fn paper_scale_round_trip_near_100_cycles() {
        // §4.3: one round trip across a 1024-core chip ≈ 100 cycles.
        let m = Mesh::for_cores(1024);
        let rt = m.avg_round_trip();
        assert!((70..=115).contains(&rt), "1024-core round trip {rt} cycles");
    }

    #[test]
    fn center_is_closer_than_random_tile() {
        let m = Mesh::for_cores(1024);
        assert!(m.center_round_trip() < m.avg_round_trip());
    }

    #[test]
    fn bigger_mesh_costs_more() {
        assert!(Mesh::for_cores(1024).avg_round_trip() > Mesh::for_cores(16).avg_round_trip());
    }
}
