//! The discrete-event kernel: a time-ordered event queue with
//! deterministic tie-breaking and per-core event epochs.
//!
//! Determinism: events at the same cycle fire in insertion order (the
//! `seq` tie-breaker), and nothing in the simulator consults wall-clock
//! time or OS entropy, so a run is a pure function of its configuration
//! and seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in cycles.
pub type Cycles = u64;

/// What an event means to the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Resume the core's state machine. Carries the core's schedule epoch;
    /// stale epochs are ignored (the core was rescheduled).
    Step {
        /// Epoch at scheduling time.
        epoch: u64,
    },
    /// A wait timeout. Carries the wait epoch; ignored if the core's wait
    /// already resolved.
    Timeout {
        /// Wait epoch at scheduling time.
        wait_epoch: u64,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Fire time.
    pub time: Cycles,
    /// Tie-breaker (global insertion order).
    pub seq: u64,
    /// Target core.
    pub core: u32,
    /// Payload.
    pub kind: EventKind,
}

/// The event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` for `core` at `time`.
    pub fn push(&mut self, time: Cycles, core: u32, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            core,
            kind,
        }));
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 0, EventKind::Step { epoch: 0 });
        q.push(10, 1, EventKind::Step { epoch: 0 });
        q.push(20, 2, EventKind::Step { epoch: 0 });
        let order: Vec<Cycles> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 7, EventKind::Step { epoch: 0 });
        q.push(5, 3, EventKind::Step { epoch: 0 });
        q.push(5, 9, EventKind::Step { epoch: 0 });
        let cores: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.core).collect();
        assert_eq!(cores, vec![7, 3, 9], "FIFO among same-cycle events");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(42, 0, EventKind::Timeout { wait_epoch: 1 });
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.pop().unwrap().time, 42);
        assert!(q.is_empty());
    }
}
