//! The simulator's hardware/DBMS cost model.
//!
//! Graphite executes real instructions; we charge explicit cycle costs
//! instead. Constants are calibrated (see `EXPERIMENTS.md`) so that a
//! single core executes a 16-access YCSB transaction in the paper's
//! observed per-core budget (§5.1: ~12-15k transactions/s/core at 1 GHz ⇒
//! ~4-5k cycles per access including index, manager and logic), and so
//! that the §4.3 micro-benchmark reproduces Fig. 6's allocator ceilings
//! (mutex ≈ 1M ts/s, atomic ≈ 10M ts/s at 1024 cores from the ~100-cycle
//! cache-line round trip, hardware counter ≈ 1B ts/s).
//!
//! Costs that involve chip-crossing scale with the mesh via
//! [`crate::topology::Mesh`]; pure-CPU costs are flat.

use crate::topology::Mesh;

/// Clock frequency: cycles per second (paper: 1 GHz tiles).
pub const FREQ_HZ: u64 = 1_000_000_000;

/// Convert cycles to seconds at [`FREQ_HZ`].
pub fn cycles_to_secs(cycles: u64) -> f64 {
    cycles as f64 / FREQ_HZ as f64
}

/// Convert microseconds to cycles at [`FREQ_HZ`].
pub fn us_to_cycles(us: u64) -> u64 {
    us.saturating_mul(FREQ_HZ / 1_000_000)
}

/// All tunable cycle costs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU work per query: application logic plus tuple operation
    /// (instruction execution, branch/cache effects folded in).
    pub useful_per_access: u64,
    /// Extra CPU work per `logic_per_query` tick (TPC-C program logic).
    pub logic_tick: u64,
    /// L2 base (slice-local) access cost.
    pub l2_base: u64,
    /// Hash-index probe: bucket latch + chain walk (plus NUCA distance,
    /// added per-mesh).
    pub index_base: u64,
    /// Lock/timestamp-manager bookkeeping per access (latch + metadata,
    /// plus NUCA distance).
    pub manager_base: u64,
    /// Copying tuple bytes into a private buffer, per 100 bytes
    /// (TIMESTAMP/OCC read copies, MVCC version creation, §5.1).
    pub copy_per_100b: u64,
    /// Memory-pool allocation for a copy/version (the custom malloc §4.1).
    pub alloc_block: u64,
    /// Per-entry cost of OCC validation (latch + compare).
    pub validate_per_item: u64,
    /// Cost of releasing one lock / resolving one prewrite at commit.
    pub release_per_item: u64,
    /// Latency for a wakeup message to cross the chip to a waiting core
    /// (added to the waiter's wait time; plus NUCA distance).
    pub wake_base: u64,
    /// Fixed penalty between an abort and the restart (restart is in the
    /// same worker, §3.2). DBx1000's `ABORT_PENALTY` is 25 µs — the delay
    /// that makes restart storms expensive enough to bend NO_WAIT's
    /// high-contention curve (Fig. 10).
    pub abort_penalty: u64,
    /// Fraction (per-mille) of a transaction's accumulated useful work
    /// charged again as rollback cost ("slightly less than the time it
    /// takes to re-execute", §5.2). 700 = 70%.
    pub undo_permille: u64,
    /// Mutex-protected critical section service time (timestamp mutex,
    /// Fig. 6's ~1M ts/s ceiling).
    pub mutex_service: u64,
    /// Base cost of an atomic fetch-add when the line is local.
    pub atomic_base: u64,
    /// Per-core loop overhead in the allocation micro-benchmark and the
    /// local cost of composing a clock timestamp.
    pub clock_read: u64,
    /// Reading the global epoch at a SILO commit. The epoch is a
    /// read-mostly cache line (one writer every tens of milliseconds), so
    /// it replicates into every core's cache and the read is near-local —
    /// flat, *not* scaled by the mesh, which is exactly why SILO escapes
    /// the §4.3 allocator ceiling.
    pub epoch_read: u64,
    /// Per-key cost of a range scan's leaf walk: the B+-tree next-entry
    /// step plus the per-tuple touch. Far below `useful_per_access` —
    /// scans amortize the descend (charged once as the index probe) over
    /// sequential, cache-friendly leaf entries.
    pub scan_entry: u64,
    /// Local cost of one commit-time `rts`-extension CAS (TICTOC). The
    /// coherence half — pulling the tuple's line back for the write after
    /// validation read it — is added per-mesh in
    /// [`BoundCosts::rts_extension`], which is what makes TICTOC's
    /// scalability tax *distributed* (per-tuple lines) rather than a
    /// single allocator line like the T/O schemes.
    pub rts_extend_base: u64,
    /// Copying a commit's redo record into the worker-private log buffer,
    /// per 100 bytes. Flat (core-local memcpy, one shard per worker —
    /// exactly why epoch group commit survives 1024 cores).
    pub log_append_per_100b: u64,
    /// Forcing a log shard to its device (`fsync`): the per-commit price
    /// of the classical force policy. Device latency, not mesh traffic —
    /// flat in the core count but enormous next to a transaction.
    pub log_fsync: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            useful_per_access: 3_800,
            logic_tick: 400,
            l2_base: 8,
            index_base: 40,
            manager_base: 30,
            copy_per_100b: 18,
            alloc_block: 40,
            validate_per_item: 40,
            release_per_item: 25,
            wake_base: 20,
            abort_penalty: 25_000,
            undo_permille: 700,
            mutex_service: 1_000,
            atomic_base: 22,
            clock_read: 90,
            epoch_read: 12,
            scan_entry: 60,
            rts_extend_base: 22,
            log_append_per_100b: 16,
            // 100 µs at 1 GHz — a fast NVMe flush; spinning media or
            // cloud block stores are far worse.
            log_fsync: 100_000,
        }
    }
}

/// Cost model bound to a specific mesh (core count).
#[derive(Debug, Clone)]
pub struct BoundCosts {
    /// The raw constants.
    pub model: CostModel,
    /// The chip the costs are evaluated on.
    pub mesh: Mesh,
    l2_access: u64,
    round_trip: u64,
}

impl BoundCosts {
    /// Bind `model` to a chip with `cores` tiles.
    pub fn new(model: CostModel, cores: u32) -> Self {
        let mesh = Mesh::for_cores(cores);
        let l2_access = model.l2_base + mesh.avg_latency();
        let round_trip = mesh.avg_round_trip();
        Self {
            model,
            mesh,
            l2_access,
            round_trip,
        }
    }

    /// An L2 access to a random NUCA slice.
    #[inline]
    pub fn l2_access(&self) -> u64 {
        self.l2_access
    }

    /// A contended cache-line transfer across the chip.
    #[inline]
    pub fn round_trip(&self) -> u64 {
        self.round_trip
    }

    /// Index probe for one access.
    #[inline]
    pub fn index_probe(&self) -> u64 {
        self.model.index_base + self.l2_access
    }

    /// CC-manager bookkeeping for one access.
    #[inline]
    pub fn manager_op(&self) -> u64 {
        self.model.manager_base + self.l2_access
    }

    /// Useful work for one access of a `row_size`-byte tuple, optionally
    /// copying it, plus `logic` program-logic ticks.
    #[inline]
    pub fn access_work(&self, row_size: usize, copy: bool, logic: u32) -> u64 {
        let mut c = self.model.useful_per_access
            + u64::from(logic) * self.model.logic_tick
            + self.l2_access;
        if copy {
            c += self.copy_cost(row_size) + self.model.alloc_block;
        }
        c
    }

    /// Pure copy cost for `row_size` bytes.
    #[inline]
    pub fn copy_cost(&self, row_size: usize) -> u64 {
        (row_size as u64).div_ceil(100) * self.model.copy_per_100b
    }

    /// Useful work of a range scan over `entries` consecutive keys of
    /// `row_size`-byte tuples, optionally copying each (T/O read copies),
    /// plus `logic` program-logic ticks. The tree descend is charged
    /// separately as the access's index probe.
    #[inline]
    pub fn scan_work(&self, entries: usize, row_size: usize, copy: bool, logic: u32) -> u64 {
        let mut per = self.model.scan_entry;
        if copy {
            per += self.copy_cost(row_size) + self.model.alloc_block;
        }
        self.model.useful_per_access / 4
            + u64::from(logic) * self.model.logic_tick
            + self.l2_access
            + entries as u64 * per
    }

    /// Commit-time cost for releasing `items` locks / prewrites.
    #[inline]
    pub fn release_cost(&self, items: usize) -> u64 {
        self.model.release_per_item * items as u64 + self.l2_access
    }

    /// OCC validation cost over `reads` read-set and `writes` write-set
    /// entries.
    #[inline]
    pub fn validate_cost(&self, reads: usize, writes: usize) -> u64 {
        self.model.validate_per_item * (reads + writes) as u64 + self.l2_access
    }

    /// Latency until a woken core resumes.
    #[inline]
    pub fn wake_latency(&self) -> u64 {
        self.model.wake_base + self.mesh.avg_latency()
    }

    /// One read of the global epoch (SILO serialization point). Flat in
    /// the core count — the line is read-mostly and replicates.
    #[inline]
    pub fn epoch_read(&self) -> u64 {
        self.model.epoch_read
    }

    /// One commit-time `rts`-extension CAS on a tuple word (TICTOC). The
    /// validation read just pulled the line shared; upgrading it to
    /// modified costs roughly half a contended round trip on average —
    /// traffic that scales with the mesh, but is spread over the
    /// transaction's *own* tuples instead of one global allocator line,
    /// so extensions on different tuples proceed in parallel.
    #[inline]
    pub fn rts_extension(&self) -> u64 {
        self.model.rts_extend_base + self.round_trip() / 2
    }

    /// Rollback cost for a transaction that had accumulated `work` cycles
    /// of useful work.
    #[inline]
    pub fn undo_cost(&self, work: u64) -> u64 {
        work * self.model.undo_permille / 1000
    }

    /// Appending a `bytes`-byte redo record to the worker-private log
    /// buffer. Flat in the core count (no shared line is touched).
    #[inline]
    pub fn log_append(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(100) * self.model.log_append_per_100b
    }

    /// One per-commit log force.
    #[inline]
    pub fn log_fsync(&self) -> u64 {
        self.model.log_fsync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_core_count() {
        let small = BoundCosts::new(CostModel::default(), 4);
        let large = BoundCosts::new(CostModel::default(), 1024);
        assert!(large.l2_access() > small.l2_access());
        assert!(large.round_trip() > small.round_trip());
        assert!(large.index_probe() > small.index_probe());
    }

    #[test]
    fn single_core_ycsb_txn_budget_matches_paper() {
        // 16 reads of 1 KB tuples, in place (2PL): the paper's per-core
        // rate is ~10-20k txn/s at 1 GHz ⇒ 50k-100k cycles per txn.
        let c = BoundCosts::new(CostModel::default(), 1);
        let per_access = c.index_probe() + c.manager_op() + c.access_work(1008, false, 0);
        let txn = 16 * per_access;
        assert!(
            (50_000..=100_000).contains(&txn),
            "single-core txn budget {txn} cycles out of the paper's range"
        );
    }

    #[test]
    fn copy_cost_proportional_to_row_size() {
        let c = BoundCosts::new(CostModel::default(), 64);
        assert!(c.copy_cost(1000) > c.copy_cost(100));
        assert_eq!(c.copy_cost(1000), 10 * c.copy_cost(100));
    }

    #[test]
    fn undo_is_cheaper_than_redo() {
        let c = BoundCosts::new(CostModel::default(), 64);
        assert!(c.undo_cost(10_000) < 10_000);
        assert!(c.undo_cost(10_000) > 5_000);
    }

    #[test]
    fn rts_extension_scales_with_cores_but_stays_distributed() {
        let small = BoundCosts::new(CostModel::default(), 4);
        let large = BoundCosts::new(CostModel::default(), 1024);
        // The CAS pays real coherence traffic at scale...
        assert!(large.rts_extension() > small.rts_extension());
        // ...but a single extension is far below the mutex-service path,
        // and bounded by one contended round trip — per-tuple, not a
        // serialized allocator line.
        assert!(large.rts_extension() <= large.round_trip() + large.model.rts_extend_base);
        assert!(large.rts_extension() < large.model.mutex_service);
    }

    #[test]
    fn epoch_read_does_not_scale_with_cores() {
        let small = BoundCosts::new(CostModel::default(), 4);
        let large = BoundCosts::new(CostModel::default(), 1024);
        assert_eq!(small.epoch_read(), large.epoch_read());
        // The whole point: cheaper than even one cross-chip round trip.
        assert!(large.epoch_read() < large.round_trip());
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(us_to_cycles(100), 100_000);
        assert!((cycles_to_secs(FREQ_HZ) - 1.0).abs() < 1e-12);
    }
}
