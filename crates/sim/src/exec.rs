//! The per-core transaction state machines and the simulation world.
//!
//! Each simulated core runs one worker executing its queued transactions
//! (§3.2). A core advances through `Phase`s; every phase charges cycles
//! to one of the seven time phases (the paper's six §3.2 categories plus
//! Logging, split out of Manager) and either schedules its next
//! phase as a future event, parks (blocked on a lock / prewrite /
//! partition / validation latch), or aborts. The scheme logic operates on
//! the plain single-threaded structures in [`crate::db`] — in a
//! discrete-event simulation the event loop *is* the serialization point,
//! so the schemes here are the textbook algorithms with explicit queues,
//! which is precisely what the experiments measure.

use abyss_common::stats::Phase as TimePhase;
use abyss_common::txn::MAX_COUNTER_SLOTS;
use abyss_common::{AbortReason, AccessOp, CcScheme, Key, RunStats, Ts, TxnId, TxnTemplate};

use crate::config::{SimConfig, SimDurability};
use crate::cost::BoundCosts;
use crate::db::{Mode, SimDb, SimOwner, SimPart, SimWaiter, TupleCc};
use crate::kernel::{Cycles, EventKind, EventQueue};
use crate::tsalloc::TsAllocSim;

/// Bits of a simulated txn id reserved for the core (2048 cores max).
pub const CORE_BITS: u32 = 11;

/// Compose a simulated transaction id.
#[inline]
pub fn make_txn_id(core: u32, seq: u64) -> TxnId {
    (seq << CORE_BITS) | u64::from(core)
}

/// The core encoded in a transaction id.
#[inline]
pub fn core_of(txn: TxnId) -> u32 {
    (txn & ((1 << CORE_BITS) - 1)) as u32
}

/// Where a core's state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Fetch the next (or retried) transaction, allocate its timestamp.
    Fetch,
    /// Timestamp in hand; branch to partitions or accesses.
    Start,
    /// H-STORE: acquiring partition `txn.part_idx`.
    PartAcquire,
    /// Charge the index probe of access `txn.access_idx`.
    AccessIndex,
    /// Run the scheme's admission logic for the access.
    AccessCc,
    /// Charge the access's useful work (`copy`: a private copy was made).
    AccessWork {
        /// Whether the access copies the tuple (T/O read copies, undo
        /// images, buffered writes).
        copy: bool,
    },
    /// Begin commit (2PL/T/O release bookkeeping; OCC second timestamp).
    CommitStart,
    /// OCC: validation after the second timestamp arrived.
    OccValidate,
    /// Apply the commit's state changes at the right simulated time.
    CommitDone,
    /// Charge rollback work.
    AbortStart,
    /// Apply the abort's state changes; schedule the restart.
    AbortDone,
}

/// A buffered write record.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WriteRec {
    pub table: u32,
    pub key: Key,
    /// The write increments the tuple's hot counter at commit.
    pub counter_bump: bool,
}

/// Per-transaction run state.
#[derive(Debug)]
pub(crate) struct TxnRun {
    pub tmpl: TxnTemplate,
    pub txn_id: TxnId,
    pub ts: Ts,
    pub access_idx: usize,
    pub part_idx: usize,
    /// Resolved (table, key, op) of the access currently in flight.
    pub cur: (u32, Key, AccessOp),
    /// 2PL locks held.
    pub held: Vec<(u32, Key, Mode)>,
    /// Tuples carrying this txn's prewrite (T/O, MVCC).
    pub prewrites: Vec<(u32, Key)>,
    /// Buffered writes (T/O, MVCC, OCC).
    pub wbuf: Vec<WriteRec>,
    /// OCC read set with observed versions.
    pub rset: Vec<(u32, Key, u64)>,
    /// Buffered inserts (T/O, MVCC, OCC).
    pub pending_inserts: Vec<(u32, Key)>,
    /// Eagerly applied inserts (2PL, H-STORE) — destroyed on abort.
    pub applied_inserts: Vec<(u32, Key)>,
    /// In-place counter bumps to revert on abort (2PL, H-STORE).
    pub counter_undo: Vec<(u32, Key)>,
    /// Captured counter values (TPC-C derived keys).
    pub counters: [u64; MAX_COUNTER_SLOTS],
    /// Mapped, sorted, deduplicated H-STORE partitions.
    pub parts: Vec<u32>,
    /// Partitions currently owned.
    pub parts_held: Vec<u32>,
    /// Useful-work cycles accumulated (drives the undo cost).
    pub work_done: Cycles,
    /// Simulated time this attempt entered the pipeline (latency histos).
    pub attempt_start: Cycles,
    /// Why the transaction is aborting.
    pub abort_reason: Option<AbortReason>,
    /// OCC: validation latches currently held.
    pub occ_locked: bool,
    /// This is a restart of the same template.
    pub retry: bool,
}

impl TxnRun {
    fn empty() -> Self {
        Self::new(TxnTemplate::new(Vec::new()), 0)
    }

    fn new(tmpl: TxnTemplate, txn_id: TxnId) -> Self {
        Self {
            tmpl,
            txn_id,
            ts: 0,
            access_idx: 0,
            part_idx: 0,
            cur: (0, 0, AccessOp::Read),
            held: Vec::new(),
            prewrites: Vec::new(),
            wbuf: Vec::new(),
            rset: Vec::new(),
            pending_inserts: Vec::new(),
            applied_inserts: Vec::new(),
            counter_undo: Vec::new(),
            counters: [0; MAX_COUNTER_SLOTS],
            parts: Vec::new(),
            parts_held: Vec::new(),
            work_done: 0,
            attempt_start: 0,
            abort_reason: None,
            occ_locked: false,
            retry: false,
        }
    }

    /// Reset run state for a restart, keeping the template (and, under
    /// WAIT_DIE, the timestamp — `keep_ts`).
    fn reset_for_retry(&mut self, txn_id: TxnId, keep_ts: bool) {
        self.txn_id = txn_id;
        if !keep_ts {
            self.ts = 0;
        }
        self.access_idx = 0;
        self.part_idx = 0;
        self.held.clear();
        self.prewrites.clear();
        self.wbuf.clear();
        self.rset.clear();
        self.pending_inserts.clear();
        self.applied_inserts.clear();
        self.counter_undo.clear();
        self.counters = [0; MAX_COUNTER_SLOTS];
        self.parts_held.clear();
        self.work_done = 0;
        self.abort_reason = None;
        self.occ_locked = false;
        self.retry = true;
    }
}

/// One simulated core.
#[derive(Debug)]
pub(crate) struct CoreSim {
    pub id: u32,
    pub phase: Phase,
    pub txn: TxnRun,
    /// Schedule epoch: stale Step events are ignored.
    pub epoch: u64,
    /// Wait epoch: stale Timeout events are ignored.
    pub wait_epoch: u64,
    pub parked: bool,
    pub blocked_since: Cycles,
    /// What lock wait a pending timeout refers to.
    pub waiting_on: Option<(u32, Key)>,
    pub stats: RunStats,
    seq: u64,
}

impl CoreSim {
    fn new(id: u32) -> Self {
        Self {
            id,
            phase: Phase::Fetch,
            txn: TxnRun::empty(),
            epoch: 0,
            wait_epoch: 0,
            parked: false,
            blocked_since: 0,
            waiting_on: None,
            stats: RunStats::default(),
            seq: 0,
        }
    }
}

/// Outcome of a scheme's admission decision.
enum Out {
    Granted {
        cost: Cycles,
        copy: bool,
    },
    Parked {
        cost: Cycles,
        timeout: bool,
        /// The tuple the core is waiting on (a scan may block on any key
        /// inside its range, not just the access's base key).
        on: (u32, Key),
    },
    Abort {
        cost: Cycles,
        reason: AbortReason,
    },
}

/// The whole simulated world.
pub(crate) struct Sim {
    pub cfg: SimConfig,
    pub costs: BoundCosts,
    pub db: SimDb,
    pub ts: TsAllocSim,
    pub parts: Vec<SimPart>,
    pub cores: Vec<CoreSim>,
    pub q: EventQueue,
    pub gens: Vec<Box<dyn FnMut() -> TxnTemplate>>,
}

impl Sim {
    pub(crate) fn new(
        cfg: SimConfig,
        tables: Vec<crate::db::SimTable>,
        gens: Vec<Box<dyn FnMut() -> TxnTemplate>>,
    ) -> Self {
        assert_eq!(gens.len(), cfg.cores as usize, "one generator per core");
        let costs = BoundCosts::new(cfg.cost.clone(), cfg.cores);
        let db = SimDb::new(cfg.scheme, tables);
        let ts = TsAllocSim::new(cfg.ts_method, &costs, cfg.cores);
        let mut parts = Vec::new();
        parts.resize_with(cfg.hstore_parts as usize, SimPart::default);
        let cores = (0..cfg.cores).map(CoreSim::new).collect();
        Self {
            cfg,
            costs,
            db,
            ts,
            parts,
            cores,
            q: EventQueue::new(),
            gens,
        }
    }

    /// Kick every core off at cycle 0.
    pub(crate) fn start(&mut self) {
        for i in 0..self.cores.len() {
            self.sched(i, 0);
        }
    }

    fn sched(&mut self, ci: usize, at: Cycles) {
        let c = &mut self.cores[ci];
        c.epoch += 1;
        self.q
            .push(at, ci as u32, EventKind::Step { epoch: c.epoch });
    }

    /// Wake a *parked* core at `at` (also invalidates its timeout).
    fn wake(&mut self, cj: u32, at: Cycles) {
        let c = &mut self.cores[cj as usize];
        c.wait_epoch += 1;
        c.waiting_on = None;
        c.epoch += 1;
        // A waiter parks at its admission time plus the manager cost; a
        // release racing inside that window must not resume it earlier.
        let at = at.max(c.blocked_since);
        self.q.push(at, cj, EventKind::Step { epoch: c.epoch });
    }

    fn park(&mut self, ci: usize, now: Cycles, waiting_on: Option<(u32, Key)>, timeout: bool) {
        let c = &mut self.cores[ci];
        c.parked = true;
        c.blocked_since = now;
        c.waiting_on = waiting_on;
        c.wait_epoch += 1;
        if timeout {
            if let Some(t) = self.cfg.dl_timeout {
                let epoch = c.wait_epoch;
                self.q
                    .push(now + t, ci as u32, EventKind::Timeout { wait_epoch: epoch });
            }
        }
    }

    /// Charge `cycles` to a time phase: the seven-phase profile
    /// (`phase_ns` — in the simulator the unit is cycles, only the
    /// fractions are compared against the engine) and the paper's legacy
    /// six-category breakdown (Logging folds into Manager there).
    fn charge(&mut self, ci: usize, phase: TimePhase, cycles: Cycles) {
        let stats = &mut self.cores[ci].stats;
        stats.phase_ns.record(phase, cycles);
        stats.breakdown.record(phase.legacy_category(), cycles);
    }

    /// Handle a Step event.
    pub(crate) fn on_step(&mut self, ci: usize, now: Cycles, epoch: u64) {
        if self.cores[ci].epoch != epoch {
            return; // stale
        }
        if self.cores[ci].parked {
            let waited = now.saturating_sub(self.cores[ci].blocked_since);
            self.charge(ci, TimePhase::Wait, waited);
            self.cores[ci].parked = false;
        }
        self.run_phases(ci, now);
    }

    /// Handle a Timeout event (DL_DETECT lock waits only).
    pub(crate) fn on_timeout(&mut self, ci: usize, now: Cycles, wait_epoch: u64) {
        let c = &self.cores[ci];
        if !c.parked || c.wait_epoch != wait_epoch {
            return; // resolved already
        }
        let me = c.txn.txn_id;
        if let Some((table, key)) = c.waiting_on {
            if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
                q.waiters.retain(|w| w.txn != me);
            }
        }
        let waited = now.saturating_sub(self.cores[ci].blocked_since);
        self.charge(ci, TimePhase::Wait, waited);
        let c = &mut self.cores[ci];
        c.parked = false;
        c.waiting_on = None;
        c.wait_epoch += 1;
        c.txn.abort_reason = Some(AbortReason::WaitTimeout);
        c.phase = Phase::AbortStart;
        self.run_phases(ci, now);
    }

    /// Advance the state machine until it schedules, parks, or halts.
    fn run_phases(&mut self, ci: usize, now: Cycles) {
        loop {
            match self.cores[ci].phase {
                Phase::Fetch => {
                    let scheme = self.cfg.scheme;
                    {
                        let retry = self.cores[ci].txn.retry;
                        if !retry {
                            let tmpl = (self.gens[ci])();
                            let c = &mut self.cores[ci];
                            c.seq += 1;
                            let id = make_txn_id(c.id, c.seq);
                            let mut txn = TxnRun::new(tmpl, id);
                            if scheme == CcScheme::HStore {
                                let parts_n = self.cfg.hstore_parts;
                                let mut p: Vec<u32> =
                                    txn.tmpl.partitions.iter().map(|&w| w % parts_n).collect();
                                p.sort_unstable();
                                p.dedup();
                                txn.parts = p;
                            }
                            c.txn = txn;
                        } else {
                            let c = &mut self.cores[ci];
                            c.seq += 1;
                            let id = make_txn_id(c.id, c.seq);
                            let keep_ts = scheme == CcScheme::WaitDie;
                            c.txn.reset_for_retry(id, keep_ts);
                        }
                    }
                    self.cores[ci].txn.attempt_start = now;
                    if scheme.needs_start_ts() && self.cores[ci].txn.ts == 0 {
                        let grant = self.ts.alloc(ci as u32, now);
                        self.cores[ci].stats.ts_allocated += 1;
                        self.charge(ci, TimePhase::TsAlloc, grant.ready_at - now);
                        self.cores[ci].txn.ts = grant.ts;
                        self.cores[ci].phase = Phase::Start;
                        self.sched(ci, grant.ready_at);
                        return;
                    }
                    self.cores[ci].phase = Phase::Start;
                }
                Phase::Start => {
                    self.cores[ci].phase = if self.cfg.scheme == CcScheme::HStore {
                        Phase::PartAcquire
                    } else {
                        Phase::AccessIndex
                    };
                }
                Phase::PartAcquire => {
                    if self.part_acquire(ci, now) {
                        return;
                    }
                }
                Phase::AccessIndex => {
                    let done = {
                        let t = &self.cores[ci].txn;
                        t.access_idx == t.tmpl.accesses.len()
                    };
                    if done {
                        if self.cores[ci].txn.tmpl.user_abort {
                            self.cores[ci].txn.abort_reason = Some(AbortReason::UserAbort);
                            self.cores[ci].phase = Phase::AbortStart;
                            continue;
                        }
                        self.cores[ci].phase = Phase::CommitStart;
                        continue;
                    }
                    let cost = self.costs.index_probe();
                    self.charge(ci, TimePhase::Index, cost);
                    self.cores[ci].phase = Phase::AccessCc;
                    self.sched(ci, now + cost);
                    return;
                }
                Phase::AccessCc => {
                    if self.access_cc(ci, now) {
                        return;
                    }
                }
                Phase::AccessWork { copy } => {
                    let (table, _, op) = self.cores[ci].txn.cur;
                    let row = self.db.row_size(table);
                    let logic = self.cores[ci].txn.tmpl.logic_per_query;
                    let mut cost = match op {
                        AccessOp::Scan { len } => {
                            self.cores[ci].stats.scans += 1;
                            self.costs.scan_work(len as usize, row, copy, logic)
                        }
                        _ => self.costs.access_work(row, copy, logic),
                    };
                    if matches!(op, AccessOp::Insert) {
                        // Index publication of the new key.
                        cost += self.costs.index_probe();
                    }
                    self.charge(ci, TimePhase::UsefulWork, cost);
                    let t = &mut self.cores[ci].txn;
                    t.work_done += cost;
                    t.access_idx += 1;
                    self.cores[ci].phase = Phase::AccessIndex;
                    self.sched(ci, now + cost);
                    return;
                }
                Phase::CommitStart => {
                    if self.commit_start(ci, now) {
                        return;
                    }
                }
                Phase::OccValidate => {
                    if self.occ_validate(ci, now) {
                        return;
                    }
                }
                Phase::CommitDone => {
                    self.commit_done(ci, now);
                    let len = self.cores[ci].txn.tmpl.len() as u64;
                    let tag = self.cores[ci].txn.tmpl.tag;
                    let c = &mut self.cores[ci];
                    c.stats.record_commit(tag);
                    c.stats
                        .commit_latency
                        .record(now.saturating_sub(c.txn.attempt_start));
                    c.stats.tuples_committed += len;
                    c.txn.retry = false;
                    c.txn.ts = 0;
                    c.phase = Phase::Fetch;
                }
                Phase::AbortStart => {
                    let undo = self.costs.undo_cost(self.cores[ci].txn.work_done);
                    self.charge(ci, TimePhase::Abort, undo);
                    self.cores[ci].phase = Phase::AbortDone;
                    if undo == 0 {
                        continue;
                    }
                    self.sched(ci, now + undo);
                    return;
                }
                Phase::AbortDone => {
                    self.abort_done(ci, now);
                    let reason = self.cores[ci]
                        .txn
                        .abort_reason
                        .expect("abort without a reason");
                    self.cores[ci].stats.record_abort(reason);
                    let start = self.cores[ci].txn.attempt_start;
                    self.cores[ci]
                        .stats
                        .abort_latency
                        .record(now.saturating_sub(start));
                    self.cores[ci].phase = Phase::Fetch;
                    if reason == AbortReason::UserAbort {
                        self.cores[ci].txn.retry = false;
                        self.cores[ci].txn.ts = 0;
                        continue;
                    }
                    let penalty = self.costs.model.abort_penalty;
                    self.charge(ci, TimePhase::Abort, penalty);
                    self.sched(ci, now + penalty);
                    return;
                }
            }
        }
    }

    /// H-STORE partition acquisition; returns true if the caller should
    /// stop (event scheduled or parked).
    fn part_acquire(&mut self, ci: usize, now: Cycles) -> bool {
        let (idx, total) = {
            let t = &self.cores[ci].txn;
            (t.part_idx, t.parts.len())
        };
        if idx >= total {
            self.cores[ci].phase = Phase::AccessIndex;
            return false;
        }
        let p = self.cores[ci].txn.parts[idx];
        let (txn_id, ts) = {
            let t = &self.cores[ci].txn;
            (t.txn_id, t.ts)
        };
        let cost = self.costs.manager_op();
        let slot = &mut self.parts[p as usize];
        match slot.busy {
            None => {
                slot.busy = Some(txn_id);
                let t = &mut self.cores[ci].txn;
                t.parts_held.push(p);
                t.part_idx += 1;
                self.charge(ci, TimePhase::Manager, cost);
                self.sched(ci, now + cost);
                true
            }
            Some(owner) if owner == txn_id => {
                // A releaser handed us the partition and woke us.
                let t = &mut self.cores[ci].txn;
                t.parts_held.push(p);
                t.part_idx += 1;
                false
            }
            Some(_) => {
                slot.enqueue(ts, txn_id, ci as u32);
                self.charge(ci, TimePhase::Manager, cost);
                self.park(ci, now + cost, None, false);
                true
            }
        }
    }

    /// Scheme admission for the current access; returns true if the caller
    /// should stop.
    fn access_cc(&mut self, ci: usize, now: Cycles) -> bool {
        // Resolve the access.
        let (table, key, op) = {
            let t = &self.cores[ci].txn;
            let a = t.tmpl.accesses[t.access_idx];
            (a.table, a.key.resolve(&t.counters), a.op)
        };
        self.cores[ci].txn.cur = (table, key, op);

        let out = match self.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                self.cc_2pl(ci, now, table, key, op)
            }
            CcScheme::Timestamp => self.cc_timestamp(ci, table, key, op),
            CcScheme::Mvcc => self.cc_mvcc(ci, table, key, op),
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => self.cc_occ(ci, table, key, op),
            CcScheme::HStore => self.cc_hstore(ci, table, key, op),
        };
        match out {
            Out::Granted { cost, copy } => {
                self.charge(ci, TimePhase::Manager, cost);
                self.cores[ci].phase = Phase::AccessWork { copy };
                self.sched(ci, now + cost);
                true
            }
            Out::Parked { cost, timeout, on } => {
                self.charge(ci, TimePhase::Manager, cost);
                // Phase stays AccessCc: woken waiters re-run admission.
                self.park(ci, now + cost, Some(on), timeout);
                true
            }
            Out::Abort { cost, reason } => {
                self.charge(ci, TimePhase::Manager, cost);
                self.cores[ci].txn.abort_reason = Some(reason);
                self.cores[ci].phase = Phase::AbortStart;
                self.sched(ci, now + cost);
                true
            }
        }
    }

    fn cc_2pl(&mut self, ci: usize, now: Cycles, table: u32, key: Key, op: AccessOp) -> Out {
        let scheme = self.cfg.scheme;
        let cost = self.costs.manager_op();
        let (me, my_ts) = {
            let t = &self.cores[ci].txn;
            (t.txn_id, t.ts)
        };
        if let AccessOp::Scan { len } = op {
            return self.cc_2pl_scan(ci, now, table, key, len);
        }
        if matches!(op, AccessOp::Insert) {
            if self.db.exists(table, key) {
                return Out::Abort {
                    cost,
                    reason: AbortReason::LockConflict,
                };
            }
            self.db.create(table, key, my_ts);
            if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
                q.owners.push(SimOwner {
                    txn: me,
                    mode: Mode::X,
                    ts: my_ts,
                });
            }
            let t = &mut self.cores[ci].txn;
            t.held.push((table, key, Mode::X));
            t.applied_inserts.push((table, key));
            return Out::Granted { cost, copy: true };
        }
        let mode = if op.is_write() { Mode::X } else { Mode::S };
        let counter = self.db.tuple(table, key).counter;
        let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc else {
            unreachable!("2PL tuple state")
        };
        if q.owns(me, mode) {
            self.apply_inplace_effects(ci, table, key, op, counter);
            return Out::Granted { cost, copy: false };
        }
        // Upgrade (S held, X wanted): grant only as sole owner.
        let upgrading = q.owns(me, Mode::S) && mode == Mode::X;
        if upgrading {
            if q.owners.iter().all(|o| o.txn == me) {
                for o in q.owners.iter_mut() {
                    o.mode = Mode::X;
                }
                for h in self.cores[ci].txn.held.iter_mut() {
                    if h.0 == table && h.1 == key {
                        h.2 = Mode::X;
                    }
                }
                self.apply_inplace_effects(ci, table, key, op, counter);
                return Out::Granted { cost, copy: true };
            }
            return Out::Abort {
                cost,
                reason: AbortReason::LockConflict,
            };
        }
        let compatible = q.compatible(mode, me);
        let fifo_clear = scheme != CcScheme::DlDetect || q.waiters.is_empty();
        if compatible && fifo_clear {
            q.owners.push(SimOwner {
                txn: me,
                mode,
                ts: my_ts,
            });
            self.cores[ci].txn.held.push((table, key, mode));
            self.apply_inplace_effects(ci, table, key, op, counter);
            return Out::Granted {
                cost,
                copy: op.is_write(),
            };
        }
        match scheme {
            CcScheme::NoWait => Out::Abort {
                cost,
                reason: AbortReason::LockConflict,
            },
            CcScheme::WaitDie => {
                let youngest = q
                    .owners
                    .iter()
                    .filter(|o| o.txn != me && !o.mode.compatible(mode))
                    .map(|o| o.ts)
                    .min()
                    .expect("conflicting owner exists");
                if my_ts >= youngest {
                    return Out::Abort {
                        cost,
                        reason: AbortReason::WaitDieKilled,
                    };
                }
                let w = SimWaiter {
                    txn: me,
                    core: ci as u32,
                    mode,
                    ts: my_ts,
                };
                let pos = q
                    .waiters
                    .iter()
                    .position(|x| x.ts > my_ts)
                    .unwrap_or(q.waiters.len());
                q.waiters.insert(pos, w);
                Out::Parked {
                    cost,
                    timeout: false,
                    on: (table, key),
                }
            }
            CcScheme::DlDetect => {
                q.waiters.push_back(SimWaiter {
                    txn: me,
                    core: ci as u32,
                    mode,
                    ts: my_ts,
                });
                if self.cfg.dl_detect {
                    if let Some(victim) = self.find_deadlock_victim(me, table, key) {
                        if victim == me {
                            if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
                                q.waiters.retain(|w| w.txn != me);
                            }
                            return Out::Abort {
                                cost,
                                reason: AbortReason::Deadlock,
                            };
                        }
                        self.abort_parked_victim(victim, now);
                    }
                }
                Out::Parked {
                    cost,
                    timeout: true,
                    on: (table, key),
                }
            }
            _ => unreachable!(),
        }
    }

    /// 2PL range scan: S-lock every *materialized* key in `[low, low+len)`.
    /// The lazy tuple map stands in for the index — only keys some
    /// transaction has touched carry lock state, which is exactly where
    /// scan-vs-write conflicts arise. Parking resumes the whole scan;
    /// already-held locks are skipped on the re-run.
    fn cc_2pl_scan(&mut self, ci: usize, now: Cycles, table: u32, low: Key, len: u32) -> Out {
        let scheme = self.cfg.scheme;
        let cost = self.costs.manager_op();
        let (me, my_ts) = {
            let t = &self.cores[ci].txn;
            (t.txn_id, t.ts)
        };
        let high = low.saturating_add(u64::from(len));
        for key in low..high {
            if !self.db.exists(table, key) {
                continue;
            }
            let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc else {
                unreachable!("2PL tuple state")
            };
            if q.owns(me, Mode::S) {
                continue;
            }
            let compatible = q.compatible(Mode::S, me);
            let fifo_clear = scheme != CcScheme::DlDetect || q.waiters.is_empty();
            if compatible && fifo_clear {
                q.owners.push(SimOwner {
                    txn: me,
                    mode: Mode::S,
                    ts: my_ts,
                });
                self.cores[ci].txn.held.push((table, key, Mode::S));
                continue;
            }
            return match scheme {
                CcScheme::NoWait => Out::Abort {
                    cost,
                    reason: AbortReason::LockConflict,
                },
                CcScheme::WaitDie => {
                    let youngest = q
                        .owners
                        .iter()
                        .filter(|o| o.txn != me && !o.mode.compatible(Mode::S))
                        .map(|o| o.ts)
                        .min()
                        .expect("conflicting owner exists");
                    if my_ts >= youngest {
                        Out::Abort {
                            cost,
                            reason: AbortReason::WaitDieKilled,
                        }
                    } else {
                        let w = SimWaiter {
                            txn: me,
                            core: ci as u32,
                            mode: Mode::S,
                            ts: my_ts,
                        };
                        let pos = q
                            .waiters
                            .iter()
                            .position(|x| x.ts > my_ts)
                            .unwrap_or(q.waiters.len());
                        q.waiters.insert(pos, w);
                        Out::Parked {
                            cost,
                            timeout: false,
                            on: (table, key),
                        }
                    }
                }
                CcScheme::DlDetect => {
                    q.waiters.push_back(SimWaiter {
                        txn: me,
                        core: ci as u32,
                        mode: Mode::S,
                        ts: my_ts,
                    });
                    if self.cfg.dl_detect {
                        if let Some(victim) = self.find_deadlock_victim(me, table, key) {
                            if victim == me {
                                if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
                                    q.waiters.retain(|w| w.txn != me);
                                }
                                return Out::Abort {
                                    cost,
                                    reason: AbortReason::Deadlock,
                                };
                            }
                            self.abort_parked_victim(victim, now);
                        }
                    }
                    Out::Parked {
                        cost,
                        timeout: true,
                        on: (table, key),
                    }
                }
                _ => unreachable!(),
            };
        }
        Out::Granted { cost, copy: false }
    }

    /// Apply in-place effects (2PL/H-STORE) once a write is admitted:
    /// counter capture+bump for `UpdateCounter`.
    fn apply_inplace_effects(
        &mut self,
        ci: usize,
        table: u32,
        key: Key,
        op: AccessOp,
        counter: u64,
    ) {
        if let AccessOp::UpdateCounter { slot } = op {
            let t = &mut self.cores[ci].txn;
            if !t.counter_undo.contains(&(table, key)) {
                t.counters[slot as usize] = counter;
                t.counter_undo.push((table, key));
                self.db.tuple(table, key).counter = counter + 1;
            }
        }
    }

    fn cc_timestamp(&mut self, ci: usize, table: u32, key: Key, op: AccessOp) -> Out {
        let cost = self.costs.manager_op();
        let (me, ts) = {
            let t = &self.cores[ci].txn;
            (t.txn_id, t.ts)
        };
        if let AccessOp::Scan { len } = op {
            // Scan every materialized key under the read rules; wts ahead
            // of the scan's timestamp aborts it (read-too-late).
            let high = key.saturating_add(u64::from(len));
            for k in key..high {
                if !self.db.exists(table, k) {
                    continue;
                }
                let TupleCc::Ts(s) = &mut self.db.tuple(table, k).cc else {
                    unreachable!("T/O tuple state")
                };
                if ts < s.wts {
                    return Out::Abort {
                        cost,
                        reason: AbortReason::TsOrderViolation,
                    };
                }
                if s.pending_below(ts, me) {
                    s.waiters.push(ci as u32);
                    return Out::Parked {
                        cost,
                        timeout: false,
                        on: (table, k),
                    };
                }
                s.rts = s.rts.max(ts);
            }
            return Out::Granted { cost, copy: true };
        }
        if matches!(op, AccessOp::Insert) {
            self.cores[ci].txn.pending_inserts.push((table, key));
            return Out::Granted { cost, copy: true };
        }
        // Read-own-write is served from the workspace.
        if self.cores[ci]
            .txn
            .wbuf
            .iter()
            .any(|w| w.table == table && w.key == key)
        {
            return Out::Granted { cost, copy: false };
        }
        let counter = self.db.tuple(table, key).counter;
        let TupleCc::Ts(s) = &mut self.db.tuple(table, key).cc else {
            unreachable!("T/O tuple state")
        };
        match op {
            AccessOp::Read => {
                if ts < s.wts {
                    return Out::Abort {
                        cost,
                        reason: AbortReason::TsOrderViolation,
                    };
                }
                if s.pending_below(ts, me) {
                    s.waiters.push(ci as u32);
                    return Out::Parked {
                        cost,
                        timeout: false,
                        on: (table, key),
                    };
                }
                s.rts = s.rts.max(ts);
                Out::Granted { cost, copy: true }
            }
            AccessOp::Update | AccessOp::UpdateCounter { .. } => {
                if ts < s.wts || ts < s.rts {
                    return Out::Abort {
                        cost,
                        reason: AbortReason::TsOrderViolation,
                    };
                }
                if s.pending_below(ts, me) {
                    s.waiters.push(ci as u32);
                    return Out::Parked {
                        cost,
                        timeout: false,
                        on: (table, key),
                    };
                }
                s.rts = s.rts.max(ts);
                s.prewrites.push((ts, me));
                let bump = matches!(op, AccessOp::UpdateCounter { .. });
                let t = &mut self.cores[ci].txn;
                if let AccessOp::UpdateCounter { slot } = op {
                    t.counters[slot as usize] = counter;
                }
                t.prewrites.push((table, key));
                t.wbuf.push(WriteRec {
                    table,
                    key,
                    counter_bump: bump,
                });
                Out::Granted { cost, copy: true }
            }
            AccessOp::Insert | AccessOp::Scan { .. } => unreachable!(),
        }
    }

    fn cc_mvcc(&mut self, ci: usize, table: u32, key: Key, op: AccessOp) -> Out {
        let cost = self.costs.manager_op();
        let (me, ts) = {
            let t = &self.cores[ci].txn;
            (t.txn_id, t.ts)
        };
        if let AccessOp::Scan { len } = op {
            // Snapshot-bounded scan: versions invisible at `ts` are
            // skipped; a pending earlier write parks the scanner.
            let high = key.saturating_add(u64::from(len));
            for k in key..high {
                if !self.db.exists(table, k) {
                    continue;
                }
                let TupleCc::Mvcc(m) = &mut self.db.tuple(table, k).cc else {
                    unreachable!("MVCC tuple state")
                };
                let Some(vi) = m.visible(ts) else {
                    continue;
                };
                let (vwts, vrts) = m.versions[vi];
                if m.pending_between(vwts, ts, me) {
                    m.waiters.push(ci as u32);
                    return Out::Parked {
                        cost,
                        timeout: false,
                        on: (table, k),
                    };
                }
                m.versions[vi].1 = vrts.max(ts);
            }
            return Out::Granted { cost, copy: true };
        }
        if matches!(op, AccessOp::Insert) {
            self.cores[ci].txn.pending_inserts.push((table, key));
            return Out::Granted { cost, copy: true };
        }
        if self.cores[ci]
            .txn
            .wbuf
            .iter()
            .any(|w| w.table == table && w.key == key)
        {
            return Out::Granted { cost, copy: false };
        }
        let counter = self.db.tuple(table, key).counter;
        let TupleCc::Mvcc(m) = &mut self.db.tuple(table, key).cc else {
            unreachable!("MVCC tuple state")
        };
        let Some(vi) = m.visible(ts) else {
            return Out::Abort {
                cost,
                reason: AbortReason::TsOrderViolation,
            };
        };
        let (vwts, vrts) = m.versions[vi];
        match op {
            AccessOp::Read => {
                if m.pending_between(vwts, ts, me) {
                    m.waiters.push(ci as u32);
                    return Out::Parked {
                        cost,
                        timeout: false,
                        on: (table, key),
                    };
                }
                m.versions[vi].1 = vrts.max(ts);
                Out::Granted { cost, copy: true }
            }
            AccessOp::Update | AccessOp::UpdateCounter { .. } => {
                if vi != m.versions.len() - 1 || vrts > ts {
                    return Out::Abort {
                        cost,
                        reason: AbortReason::MvccWriteConflict,
                    };
                }
                if m.pending_between(vwts, ts, me) {
                    m.waiters.push(ci as u32);
                    return Out::Parked {
                        cost,
                        timeout: false,
                        on: (table, key),
                    };
                }
                if m.prewrites.iter().any(|&(p, t2)| p > ts && t2 != me) {
                    return Out::Abort {
                        cost,
                        reason: AbortReason::MvccWriteConflict,
                    };
                }
                m.versions[vi].1 = vrts.max(ts);
                m.prewrites.push((ts, me));
                let bump = matches!(op, AccessOp::UpdateCounter { .. });
                let t = &mut self.cores[ci].txn;
                if let AccessOp::UpdateCounter { slot } = op {
                    t.counters[slot as usize] = counter;
                }
                t.prewrites.push((table, key));
                t.wbuf.push(WriteRec {
                    table,
                    key,
                    counter_bump: bump,
                });
                Out::Granted { cost, copy: true }
            }
            AccessOp::Insert | AccessOp::Scan { .. } => unreachable!(),
        }
    }

    fn cc_occ(&mut self, ci: usize, table: u32, key: Key, op: AccessOp) -> Out {
        let cost = self.costs.manager_op();
        let me = self.cores[ci].txn.txn_id;
        if let AccessOp::Scan { len } = op {
            // Optimistic scan: record every materialized key's version in
            // the read set (the engine's node-set validation collapses to
            // per-key validation here — the simulated tree has no leaves).
            let high = key.saturating_add(u64::from(len));
            for k in key..high {
                if !self.db.exists(table, k) {
                    continue;
                }
                let version = {
                    let TupleCc::Occ(o) = &mut self.db.tuple(table, k).cc else {
                        unreachable!("OCC tuple state")
                    };
                    if o.locked_by.is_some_and(|t| t != me) {
                        o.waiters.push(ci as u32);
                        return Out::Parked {
                            cost,
                            timeout: false,
                            on: (table, k),
                        };
                    }
                    o.version
                };
                let t = &mut self.cores[ci].txn;
                if !t.rset.iter().any(|&(tb, kk, _)| tb == table && kk == k) {
                    t.rset.push((table, k, version));
                }
            }
            return Out::Granted { cost, copy: true };
        }
        if matches!(op, AccessOp::Insert) {
            self.cores[ci].txn.pending_inserts.push((table, key));
            return Out::Granted { cost, copy: true };
        }
        if self.cores[ci]
            .txn
            .wbuf
            .iter()
            .any(|w| w.table == table && w.key == key)
        {
            return Out::Granted { cost, copy: false };
        }
        let counter = self.db.tuple(table, key).counter;
        let TupleCc::Occ(o) = &mut self.db.tuple(table, key).cc else {
            unreachable!("OCC tuple state")
        };
        if o.locked_by.is_some_and(|t| t != me) {
            // A committer is installing: the seqlock read spins.
            o.waiters.push(ci as u32);
            return Out::Parked {
                cost,
                timeout: false,
                on: (table, key),
            };
        }
        let version = o.version;
        let t = &mut self.cores[ci].txn;
        t.rset.push((table, key, version));
        if op.is_write() {
            let bump = matches!(op, AccessOp::UpdateCounter { .. });
            if let AccessOp::UpdateCounter { slot } = op {
                t.counters[slot as usize] = counter;
            }
            t.wbuf.push(WriteRec {
                table,
                key,
                counter_bump: bump,
            });
        }
        Out::Granted { cost, copy: true }
    }

    fn cc_hstore(&mut self, ci: usize, table: u32, key: Key, op: AccessOp) -> Out {
        // No per-tuple concurrency control: a handful of cycles.
        let cost = self.costs.model.manager_base / 4 + 1;
        let ts = self.cores[ci].txn.ts;
        match op {
            AccessOp::Insert => {
                if self.db.exists(table, key) {
                    return Out::Abort {
                        cost,
                        reason: AbortReason::LockConflict,
                    };
                }
                self.db.create(table, key, ts);
                self.cores[ci].txn.applied_inserts.push((table, key));
                Out::Granted { cost, copy: false }
            }
            AccessOp::UpdateCounter { .. } => {
                let counter = self.db.tuple(table, key).counter;
                self.apply_inplace_effects(ci, table, key, op, counter);
                Out::Granted { cost, copy: true }
            }
            AccessOp::Update => Out::Granted { cost, copy: true },
            AccessOp::Read | AccessOp::Scan { .. } => Out::Granted { cost, copy: false },
        }
    }

    /// Durability cost of the transaction committing on `ci`: the redo
    /// record's worker-local buffer append, plus the per-commit force
    /// under [`SimDurability::PerCommitFsync`]. Read-only commits log
    /// nothing. This is the cost the `fig_durability` sweeps expose: the
    /// append is flat and tiny (group commit tracks the logging-off
    /// ceiling) while the per-commit fsync dwarfs the transaction itself.
    fn durability_cost(&mut self, ci: usize) -> u64 {
        if self.cfg.durability == SimDurability::Off {
            return 0;
        }
        let bytes: usize = {
            // The template is the scheme-independent source of the write
            // set (2PL/H-STORE write in place, the buffered schemes via
            // wbuf/pending_inserts — all of it originates here).
            let t = &self.cores[ci].txn;
            let per_op = 25usize; // op header
            let body: usize = t
                .tmpl
                .accesses
                .iter()
                .filter(|a| a.op.is_write())
                .map(|a| self.db.row_size(a.table) + per_op)
                .sum();
            if body == 0 {
                return 0; // read-only commits log nothing
            }
            body + 28 // record frame + header
        };
        let mut cost = self.costs.log_append(bytes);
        if self.cfg.durability == SimDurability::PerCommitFsync {
            cost += self.costs.log_fsync();
        }
        let c = &mut self.cores[ci];
        c.stats.log_records += 1;
        c.stats.log_bytes += bytes as u64;
        cost
    }

    /// Commit bookkeeping phase; returns true if the caller should stop.
    fn commit_start(&mut self, ci: usize, now: Cycles) -> bool {
        match self.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                let release = self.costs.release_cost(self.cores[ci].txn.held.len());
                let dur = self.durability_cost(ci);
                self.charge(ci, TimePhase::Manager, release);
                self.charge(ci, TimePhase::Logging, dur);
                self.cores[ci].phase = Phase::CommitDone;
                self.sched(ci, now + release + dur);
                true
            }
            CcScheme::HStore => {
                let release = self.costs.release_cost(self.cores[ci].txn.parts_held.len());
                let dur = self.durability_cost(ci);
                self.charge(ci, TimePhase::Manager, release);
                self.charge(ci, TimePhase::Logging, dur);
                self.cores[ci].phase = Phase::CommitDone;
                self.sched(ci, now + release + dur);
                true
            }
            CcScheme::Timestamp | CcScheme::Mvcc => {
                let (nw, ni, rows): (usize, usize, u64) = {
                    let t = &self.cores[ci].txn;
                    let rows = t
                        .wbuf
                        .iter()
                        .map(|w| self.costs.copy_cost(self.db.row_size(w.table)))
                        .sum();
                    (t.prewrites.len(), t.pending_inserts.len(), rows)
                };
                let cost =
                    self.costs.release_cost(nw) + rows + ni as u64 * self.costs.index_probe();
                let dur = self.durability_cost(ci);
                self.charge(ci, TimePhase::Manager, cost);
                self.charge(ci, TimePhase::Logging, dur);
                self.cores[ci].phase = Phase::CommitDone;
                self.sched(ci, now + cost + dur);
                true
            }
            CcScheme::Occ => {
                // The second timestamp (validation), then validate.
                let grant = self.ts.alloc(ci as u32, now);
                self.cores[ci].stats.ts_allocated += 1;
                self.charge(ci, TimePhase::TsAlloc, grant.ready_at - now);
                self.cores[ci].phase = Phase::OccValidate;
                self.sched(ci, grant.ready_at);
                true
            }
            CcScheme::Silo => {
                // No allocator trip at all: the serialization point is one
                // read of the read-mostly global epoch line, then the same
                // distributed validation OCC performs.
                let cost = self.costs.epoch_read();
                self.charge(ci, TimePhase::Manager, cost);
                self.cores[ci].phase = Phase::OccValidate;
                self.sched(ci, now + cost);
                true
            }
            CcScheme::TicToc => {
                // Neither an allocator trip nor an epoch read: the commit
                // timestamp is computed from tuple words the lock/validate
                // steps pull into cache anyway. The scheme's scalability
                // tax — rts-extension CAS traffic — is charged inside the
                // validation phase, per extended read.
                self.cores[ci].phase = Phase::OccValidate;
                false
            }
        }
    }

    /// OCC validation; returns true if the caller should stop.
    fn occ_validate(&mut self, ci: usize, now: Cycles) -> bool {
        let me = self.cores[ci].txn.txn_id;
        let wbuf: Vec<WriteRec> = self.cores[ci].txn.wbuf.clone();
        // Foreign validation latch on any write target ⇒ wait (Silo spins).
        let mut blocked = None;
        for w in &wbuf {
            let TupleCc::Occ(o) = self.db_tuple_ref(w.table, w.key) else {
                unreachable!()
            };
            if o.locked_by.is_some_and(|l| l != me) {
                blocked = Some((w.table, w.key));
                break;
            }
        }
        if let Some((table, key)) = blocked {
            if let TupleCc::Occ(o) = &mut self.db.tuple(table, key).cc {
                o.waiters.push(ci as u32);
            }
            self.park(ci, now, Some((table, key)), false);
            return true;
        }
        // Latch the write set.
        for w in &wbuf {
            if let TupleCc::Occ(o) = &mut self.db.tuple(w.table, w.key).cc {
                o.locked_by = Some(me);
            }
        }
        self.cores[ci].txn.occ_locked = true;
        // Validate the read set.
        let rset: Vec<(u32, Key, u64)> = self.cores[ci].txn.rset.clone();
        let mut ok = true;
        for (table, key, ver) in &rset {
            let TupleCc::Occ(o) = self.db_tuple_ref(*table, *key) else {
                unreachable!()
            };
            if o.version != *ver || o.locked_by.is_some_and(|l| l != me) {
                ok = false;
                break;
            }
        }
        let validate = self.costs.validate_cost(rset.len(), wbuf.len());
        if ok {
            let durability = self.durability_cost(ci);
            let install: u64 = wbuf
                .iter()
                .map(|w| self.costs.copy_cost(self.db.row_size(w.table)))
                .sum();
            let inserts =
                self.cores[ci].txn.pending_inserts.len() as u64 * self.costs.index_probe();
            let mut cost = validate + install + inserts;
            if self.cfg.scheme == CcScheme::TicToc && !wbuf.is_empty() {
                // TICTOC: the writes drive the computed commit timestamp
                // past the read set's rts windows, so each pure read is
                // revalidated by an rts-extension CAS on its tuple word —
                // distributed coherence traffic in place of allocator
                // trips (read-only transactions need none).
                let ext = rset
                    .iter()
                    .filter(|(t, k, _)| !wbuf.iter().any(|w| w.table == *t && w.key == *k))
                    .count() as u64;
                cost += ext * self.costs.rts_extension();
                self.cores[ci].stats.rts_extensions += ext;
            }
            self.charge(ci, TimePhase::Manager, cost);
            self.charge(ci, TimePhase::Logging, durability);
            self.cores[ci].phase = Phase::CommitDone;
            self.sched(ci, now + cost + durability);
        } else {
            self.charge(ci, TimePhase::Manager, validate);
            self.cores[ci].txn.abort_reason = Some(AbortReason::ValidationFail);
            self.cores[ci].phase = Phase::AbortStart;
            self.sched(ci, now + validate);
        }
        true
    }

    fn db_tuple_ref(&mut self, table: u32, key: Key) -> &TupleCc {
        &self.db.tuple(table, key).cc
    }

    /// Apply commit effects at the commit's completion time.
    fn commit_done(&mut self, ci: usize, now: Cycles) {
        let wake_at = now + self.costs.wake_latency();
        let mut wakes: Vec<u32> = Vec::new();
        match self.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                let held = std::mem::take(&mut self.cores[ci].txn.held);
                let me = self.cores[ci].txn.txn_id;
                for (table, key, _) in held {
                    if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
                        q.remove(me);
                        wakes.extend(q.grant_ready());
                    }
                }
            }
            CcScheme::Timestamp => {
                let ts = self.cores[ci].txn.ts;
                let me = self.cores[ci].txn.txn_id;
                let wbuf = std::mem::take(&mut self.cores[ci].txn.wbuf);
                for w in wbuf {
                    let tuple = self.db.tuple(w.table, w.key);
                    if w.counter_bump {
                        tuple.counter += 1;
                    }
                    if let TupleCc::Ts(s) = &mut tuple.cc {
                        s.wts = s.wts.max(ts);
                        s.prewrites.retain(|&(_, t)| t != me);
                        wakes.append(&mut s.waiters);
                    }
                }
                let inserts = std::mem::take(&mut self.cores[ci].txn.pending_inserts);
                for (table, key) in inserts {
                    if !self.db.exists(table, key) {
                        self.db.create(table, key, ts);
                    }
                }
            }
            CcScheme::Mvcc => {
                let ts = self.cores[ci].txn.ts;
                let me = self.cores[ci].txn.txn_id;
                let max_v = self.cfg.mvcc_max_versions;
                let wbuf = std::mem::take(&mut self.cores[ci].txn.wbuf);
                for w in wbuf {
                    let tuple = self.db.tuple(w.table, w.key);
                    if w.counter_bump {
                        tuple.counter += 1;
                    }
                    if let TupleCc::Mvcc(m) = &mut tuple.cc {
                        m.prewrites.retain(|&(_, t)| t != me);
                        debug_assert!(m.versions.back().map(|&(w, _)| w < ts).unwrap_or(true));
                        m.versions.push_back((ts, ts));
                        while m.versions.len() > max_v {
                            m.versions.pop_front();
                        }
                        wakes.append(&mut m.waiters);
                    }
                }
                let inserts = std::mem::take(&mut self.cores[ci].txn.pending_inserts);
                for (table, key) in inserts {
                    if !self.db.exists(table, key) {
                        self.db.create(table, key, ts);
                    }
                }
            }
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => {
                let ts = self.cores[ci].txn.ts;
                let wbuf = std::mem::take(&mut self.cores[ci].txn.wbuf);
                for w in wbuf {
                    let tuple = self.db.tuple(w.table, w.key);
                    if w.counter_bump {
                        tuple.counter += 1;
                    }
                    if let TupleCc::Occ(o) = &mut tuple.cc {
                        o.version += 1;
                        o.locked_by = None;
                        wakes.append(&mut o.waiters);
                    }
                }
                self.cores[ci].txn.occ_locked = false;
                let inserts = std::mem::take(&mut self.cores[ci].txn.pending_inserts);
                for (table, key) in inserts {
                    if !self.db.exists(table, key) {
                        self.db.create(table, key, ts);
                    }
                }
            }
            CcScheme::HStore => {
                let parts = std::mem::take(&mut self.cores[ci].txn.parts_held);
                let me = self.cores[ci].txn.txn_id;
                for p in parts {
                    if let Some(core) = self.parts[p as usize].release(me) {
                        wakes.push(core);
                    }
                }
            }
        }
        for cj in wakes {
            self.wake(cj, wake_at);
        }
    }

    /// Apply abort effects at the rollback's completion time.
    fn abort_done(&mut self, ci: usize, now: Cycles) {
        let wake_at = now + self.costs.wake_latency();
        let mut wakes: Vec<u32> = Vec::new();
        let me = self.cores[ci].txn.txn_id;
        // Revert in-place counter bumps.
        let undo = std::mem::take(&mut self.cores[ci].txn.counter_undo);
        for (table, key) in undo {
            self.db.tuple(table, key).counter -= 1;
        }
        match self.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                let held = std::mem::take(&mut self.cores[ci].txn.held);
                for (table, key, _) in held {
                    if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
                        q.remove(me);
                        wakes.extend(q.grant_ready());
                    }
                }
            }
            CcScheme::Timestamp => {
                let pre = std::mem::take(&mut self.cores[ci].txn.prewrites);
                for (table, key) in pre {
                    if let TupleCc::Ts(s) = &mut self.db.tuple(table, key).cc {
                        s.prewrites.retain(|&(_, t)| t != me);
                        wakes.append(&mut s.waiters);
                    }
                }
            }
            CcScheme::Mvcc => {
                let pre = std::mem::take(&mut self.cores[ci].txn.prewrites);
                for (table, key) in pre {
                    if let TupleCc::Mvcc(m) = &mut self.db.tuple(table, key).cc {
                        m.prewrites.retain(|&(_, t)| t != me);
                        wakes.append(&mut m.waiters);
                    }
                }
            }
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => {
                if self.cores[ci].txn.occ_locked {
                    let wbuf = self.cores[ci].txn.wbuf.clone();
                    for w in wbuf {
                        if let TupleCc::Occ(o) = &mut self.db.tuple(w.table, w.key).cc {
                            if o.locked_by == Some(me) {
                                o.locked_by = None;
                                wakes.append(&mut o.waiters);
                            }
                        }
                    }
                    self.cores[ci].txn.occ_locked = false;
                }
            }
            CcScheme::HStore => {}
        }
        // Destroy eagerly-applied inserts (waking anyone queued on them).
        let applied = std::mem::take(&mut self.cores[ci].txn.applied_inserts);
        for (table, key) in applied {
            if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
                q.remove(me);
                for w in q.waiters.iter() {
                    wakes.push(w.core);
                }
            }
            self.db.destroy(table, key);
        }
        // H-STORE partitions released last (covers eager inserts above).
        if self.cfg.scheme == CcScheme::HStore {
            let parts = std::mem::take(&mut self.cores[ci].txn.parts_held);
            for p in parts {
                if let Some(core) = self.parts[p as usize].release(me) {
                    wakes.push(core);
                }
            }
        }
        for cj in wakes {
            self.wake(cj, wake_at);
        }
    }

    /// DFS over the waits-for relation induced by the lock queues. Returns
    /// the chosen victim if `me`'s pending request closes a cycle —
    /// following the paper, the cycle member holding the fewest locks.
    fn find_deadlock_victim(&mut self, me: TxnId, table: u32, key: Key) -> Option<TxnId> {
        let mut path: Vec<TxnId> = vec![me];
        let mut visited: Vec<TxnId> = vec![me];
        if self.dfs_cycle(me, table, key, me, &mut path, &mut visited) {
            let victim = path
                .iter()
                .copied()
                .min_by_key(|&t| {
                    let held = self.cores[core_of(t) as usize].txn.held.len();
                    (held, t)
                })
                .expect("cycle path is non-empty");
            return Some(victim);
        }
        None
    }

    fn edges_of(&mut self, waiter: TxnId, table: u32, key: Key) -> Vec<TxnId> {
        let TupleCc::Lock(q) = &self.db.tuple(table, key).cc else {
            return Vec::new();
        };
        let mode = q
            .waiters
            .iter()
            .find(|w| w.txn == waiter)
            .map(|w| w.mode)
            .unwrap_or(Mode::X);
        let mut edges: Vec<TxnId> = q
            .owners
            .iter()
            .filter(|o| o.txn != waiter && !o.mode.compatible(mode))
            .map(|o| o.txn)
            .collect();
        for w in q.waiters.iter() {
            if w.txn == waiter {
                break;
            }
            edges.push(w.txn); // queued ahead of us
        }
        edges
    }

    fn dfs_cycle(
        &mut self,
        start: TxnId,
        table: u32,
        key: Key,
        node: TxnId,
        path: &mut Vec<TxnId>,
        visited: &mut Vec<TxnId>,
    ) -> bool {
        let edges = self.edges_of(node, table, key);
        for next in edges {
            if next == start {
                return true;
            }
            if visited.contains(&next) {
                continue;
            }
            visited.push(next);
            // Follow `next` only if it is itself blocked on some tuple.
            let cj = core_of(next) as usize;
            let c = &self.cores[cj];
            if c.txn.txn_id != next || !c.parked {
                continue;
            }
            let Some((t2, k2)) = c.waiting_on else {
                continue;
            };
            path.push(next);
            if self.dfs_cycle(start, t2, k2, next, path, visited) {
                return true;
            }
            path.pop();
        }
        false
    }

    /// Abort a parked deadlock victim: pull it out of its wait queue and
    /// schedule its rollback.
    fn abort_parked_victim(&mut self, victim: TxnId, now: Cycles) {
        let cj = core_of(victim) as usize;
        let (table, key) = match self.cores[cj].waiting_on {
            Some(x) => x,
            None => return, // resolved concurrently
        };
        if let TupleCc::Lock(q) = &mut self.db.tuple(table, key).cc {
            q.waiters.retain(|w| w.txn != victim);
        }
        self.cores[cj].txn.abort_reason = Some(AbortReason::Deadlock);
        self.cores[cj].phase = Phase::AbortStart;
        self.wake(cj as u32, now + self.costs.wake_latency());
    }
}
