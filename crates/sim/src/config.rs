//! Simulation configuration.

use abyss_common::{CcScheme, TsMethod};

use crate::cost::{us_to_cycles, CostModel};
use crate::kernel::Cycles;

/// How the simulated commit path models durability (`fig_durability`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimDurability {
    /// The paper's setting: no logging cost anywhere.
    Off,
    /// Epoch group commit: each commit pays only the worker-local buffer
    /// append for its redo record; the flush amortizes over the epoch.
    GroupCommit,
    /// Classical per-commit force: append plus one `log_fsync` before
    /// the commit is acknowledged.
    PerCommitFsync,
}

impl SimDurability {
    /// Short lower-case label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SimDurability::Off => "off",
            SimDurability::GroupCommit => "group",
            SimDurability::PerCommitFsync => "fsync",
        }
    }
}

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated cores (the paper scales 1 → 1024).
    pub cores: u32,
    /// Concurrency-control scheme.
    pub scheme: CcScheme,
    /// Timestamp-allocation method (§4.3). The paper's default for the
    /// main experiments is non-batched atomic addition.
    pub ts_method: TsMethod,
    /// Hardware/DBMS cost model.
    pub cost: CostModel,
    /// Cycles simulated before statistics reset (steady state, §3.2).
    pub warmup: Cycles,
    /// Measured cycles after warmup.
    pub measure: Cycles,
    /// DL_DETECT wait timeout (Fig. 5); `None` waits forever.
    pub dl_timeout: Option<Cycles>,
    /// Run deadlock detection when a DL_DETECT transaction blocks
    /// (disabled for the Fig. 4 ordered-locking thrashing experiment).
    pub dl_detect: bool,
    /// MVCC: committed versions retained per tuple.
    pub mvcc_max_versions: usize,
    /// H-STORE partition count (= cores for YCSB §5.5; = warehouses for
    /// TPC-C §5.6).
    pub hstore_parts: u32,
    /// Durability mode of the commit path.
    pub durability: SimDurability,
    /// Base RNG seed (runs are deterministic in config + seed).
    pub seed: u64,
}

impl SimConfig {
    /// Paper-default configuration for `scheme` on `cores` cores.
    pub fn new(scheme: CcScheme, cores: u32) -> Self {
        Self {
            cores,
            scheme,
            ts_method: TsMethod::Atomic,
            cost: CostModel::default(),
            warmup: 1_000_000,
            measure: 10_000_000,
            dl_timeout: Some(us_to_cycles(100)),
            dl_detect: true,
            mvcc_max_versions: 8,
            hstore_parts: if scheme == CcScheme::HStore {
                cores.max(1)
            } else {
                1
            },
            durability: SimDurability::Off,
            seed: 0xABBA_5EED,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 || self.cores > 1 << crate::exec::CORE_BITS {
            return Err(format!(
                "cores must be in 1..={}",
                1u32 << crate::exec::CORE_BITS
            ));
        }
        if self.measure == 0 {
            return Err("measure window must be positive".into());
        }
        if self.scheme == CcScheme::HStore && self.hstore_parts == 0 {
            return Err("H-STORE needs at least one partition".into());
        }
        if self.mvcc_max_versions < 2 {
            return Err("mvcc_max_versions must be at least 2".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(CcScheme::DlDetect, 64);
        assert_eq!(c.dl_timeout, Some(100_000)); // 100 µs at 1 GHz
        assert!(c.dl_detect);
        assert_eq!(c.ts_method, TsMethod::Atomic);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn hstore_defaults_partitions_to_cores() {
        let c = SimConfig::new(CcScheme::HStore, 16);
        assert_eq!(c.hstore_parts, 16);
    }

    #[test]
    fn validation_rejects_zero_cores() {
        let mut c = SimConfig::new(CcScheme::NoWait, 1);
        c.cores = 0;
        assert!(c.validate().is_err());
        c.cores = 5000;
        assert!(c.validate().is_err());
    }
}
