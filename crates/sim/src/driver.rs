//! The simulation driver: event loop, warmup handling, reporting.

use abyss_common::{RunStats, TxnTemplate};

use crate::config::SimConfig;
use crate::cost::cycles_to_secs;
use crate::db::{SimDb, SimTable};
use crate::exec::Sim;
use crate::kernel::EventKind;

/// The result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Merged statistics over all cores. `elapsed` is the measured window
    /// in cycles; `breakdown` is in cycles.
    pub stats: RunStats,
    /// Core count of the run.
    pub cores: u32,
    /// Tuples with materialized metadata (memory diagnostics).
    pub materialized_tuples: usize,
}

impl SimReport {
    /// Committed transactions per (simulated) second.
    pub fn txn_per_sec(&self) -> f64 {
        self.stats.commits as f64 / cycles_to_secs(self.stats.elapsed)
    }

    /// Tuples accessed by committed transactions per second (Fig. 12).
    pub fn tuples_per_sec(&self) -> f64 {
        self.stats.tuples_committed as f64 / cycles_to_secs(self.stats.elapsed)
    }

    /// Commits per second of transactions tagged `tag` (TPC-C figs).
    pub fn tagged_txn_per_sec(&self, tag: u8) -> f64 {
        self.stats.commits_by_tag[tag as usize] as f64 / cycles_to_secs(self.stats.elapsed)
    }

    /// Aborts per second.
    pub fn aborts_per_sec(&self) -> f64 {
        self.stats.total_aborts() as f64 / cycles_to_secs(self.stats.elapsed)
    }
}

/// Run a simulation: `gens[i]` feeds core `i`'s transaction queue.
pub fn run_sim(
    cfg: SimConfig,
    tables: Vec<SimTable>,
    gens: Vec<Box<dyn FnMut() -> TxnTemplate>>,
) -> SimReport {
    run_sim_full(cfg, tables, gens).0
}

/// Like [`run_sim`], additionally returning the final simulated database
/// so callers can inspect post-run tuple state (e.g. the lost-update
/// checks in the behavioural tests: a hot counter must equal its initial
/// value plus the committed bumps).
pub fn run_sim_full(
    cfg: SimConfig,
    tables: Vec<SimTable>,
    gens: Vec<Box<dyn FnMut() -> TxnTemplate>>,
) -> (SimReport, SimDb) {
    cfg.validate().expect("invalid sim config");
    let warmup = cfg.warmup;
    let end = cfg.warmup + cfg.measure;
    let measure = cfg.measure;
    let cores = cfg.cores;

    let mut sim = Sim::new(cfg, tables, gens);
    sim.start();

    let mut warmed = warmup == 0;
    while let Some(t) = sim.q.peek_time() {
        if t > end {
            break;
        }
        let ev = sim.q.pop().expect("peeked event exists");
        if !warmed && ev.time >= warmup {
            for c in sim.cores.iter_mut() {
                c.stats = RunStats::default();
                if c.parked {
                    c.blocked_since = c.blocked_since.max(warmup);
                }
            }
            sim.ts.allocated = 0;
            warmed = true;
        }
        match ev.kind {
            EventKind::Step { epoch } => sim.on_step(ev.core as usize, ev.time, epoch),
            EventKind::Timeout { wait_epoch } => {
                sim.on_timeout(ev.core as usize, ev.time, wait_epoch)
            }
        }
    }

    // Account the tail of any still-parked waits.
    let mut merged = RunStats::default();
    for c in sim.cores.iter_mut() {
        if c.parked {
            let since = c.blocked_since.max(warmup);
            let tail = end.saturating_sub(since);
            c.stats
                .breakdown
                .record(abyss_common::stats::Category::Wait, tail);
            c.stats.phase_ns.record(abyss_common::Phase::Wait, tail);
        }
        c.stats.elapsed = measure;
        merged.merge(&c.stats);
    }
    merged.ts_allocated = merged.ts_allocated.max(sim.ts.allocated);
    let report = SimReport {
        stats: merged,
        cores,
        materialized_tuples: sim.db.materialized(),
    };
    (report, sim.db)
}

#[cfg(test)]
mod durability_tests {
    use abyss_common::rng::Xoshiro256;
    use abyss_common::{AccessOp, AccessSpec, CcScheme, TxnTemplate};

    use crate::config::{SimConfig, SimDurability};
    use crate::db::SimTable;
    use crate::run_sim;

    fn gen(seed: u64, rows: u64, reqs: usize, write_pct: f64) -> Box<dyn FnMut() -> TxnTemplate> {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(move || {
            let mut acc = Vec::with_capacity(reqs);
            let mut keys = Vec::with_capacity(reqs);
            while keys.len() < reqs {
                let k = rng.next_below(rows);
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            for &k in &keys {
                let op = if rng.chance(write_pct) {
                    AccessOp::Update
                } else {
                    AccessOp::Read
                };
                acc.push(AccessSpec::fixed(0, k, op));
            }
            TxnTemplate::new(acc)
        })
    }

    fn point(scheme: CcScheme, cores: u32, durability: SimDurability) -> f64 {
        let mut cfg = SimConfig::new(scheme, cores);
        cfg.durability = durability;
        cfg.warmup = 100_000;
        cfg.measure = 2_000_000;
        let gens = (0..cores)
            .map(|c| gen(0xD0_0D ^ u64::from(c), 200_000, 8, 0.5))
            .collect();
        let r = run_sim(
            cfg,
            vec![SimTable {
                row_size: 1_000,
                counter_init: 0,
            }],
            gens,
        );
        r.txn_per_sec()
    }

    /// The fig_durability shape, pinned deterministically: group commit
    /// recovers ≥ 80% of logging-off throughput at 1024 cores; the
    /// per-commit force does not (its fsync dwarfs the transaction).
    #[test]
    fn group_commit_escapes_the_fsync_ceiling_at_1024_cores() {
        for scheme in [CcScheme::Silo, CcScheme::NoWait] {
            let off = point(scheme, 1024, SimDurability::Off);
            let group = point(scheme, 1024, SimDurability::GroupCommit);
            let fsync = point(scheme, 1024, SimDurability::PerCommitFsync);
            assert!(off > 0.0 && group > 0.0 && fsync > 0.0);
            assert!(
                group >= 0.8 * off,
                "{scheme}: group commit lost too much ({group:.0} vs off {off:.0})"
            );
            assert!(
                fsync < 0.8 * off,
                "{scheme}: per-commit fsync suspiciously cheap ({fsync:.0} vs off {off:.0})"
            );
            assert!(
                fsync < group,
                "{scheme}: force policy must trail group commit"
            );
        }
    }

    /// Read-only transactions log nothing, so durability costs them
    /// nothing either.
    #[test]
    fn read_only_commits_pay_no_log_cost() {
        let mut cfg = SimConfig::new(CcScheme::NoWait, 4);
        cfg.durability = SimDurability::PerCommitFsync;
        cfg.warmup = 50_000;
        cfg.measure = 500_000;
        let gens = (0..4u64).map(|c| gen(0xBEEF ^ c, 10_000, 4, 0.0)).collect();
        let r = run_sim(
            cfg,
            vec![SimTable {
                row_size: 1_000,
                counter_init: 0,
            }],
            gens,
        );
        assert!(r.stats.commits > 0);
        assert_eq!(r.stats.log_records, 0, "read-only run must not log");
        assert_eq!(r.stats.log_bytes, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_common::rng::Xoshiro256;
    use abyss_common::{AccessOp, AccessSpec, CcScheme, TxnTemplate};

    fn gen(seed: u64, rows: u64, reqs: usize, write_pct: f64) -> Box<dyn FnMut() -> TxnTemplate> {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(move || {
            let mut acc = Vec::with_capacity(reqs);
            let mut keys = Vec::with_capacity(reqs);
            while keys.len() < reqs {
                let k = rng.next_below(rows);
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            for &k in &keys {
                let op = if rng.chance(write_pct) {
                    AccessOp::Update
                } else {
                    AccessOp::Read
                };
                acc.push(AccessSpec::fixed(0, k, op));
            }
            TxnTemplate::new(acc)
        })
    }

    fn table() -> Vec<SimTable> {
        vec![SimTable {
            row_size: 1008,
            counter_init: 0,
        }]
    }

    fn quick_cfg(scheme: CcScheme, cores: u32) -> SimConfig {
        let mut c = SimConfig::new(scheme, cores);
        c.warmup = 200_000;
        c.measure = 2_000_000;
        c
    }

    fn run(scheme: CcScheme, cores: u32, rows: u64, write_pct: f64) -> SimReport {
        let gens = (0..cores)
            .map(|i| gen(1000 + u64::from(i), rows, 8, write_pct))
            .collect();
        run_sim(quick_cfg(scheme, cores), table(), gens)
    }

    #[test]
    fn every_scheme_commits_work() {
        for scheme in CcScheme::ALL {
            let r = run(scheme, 4, 100_000, 0.5);
            assert!(
                r.stats.commits > 100,
                "{scheme}: only {} commits",
                r.stats.commits
            );
        }
    }

    #[test]
    fn read_only_uniform_scales_with_cores() {
        for scheme in [CcScheme::NoWait, CcScheme::Timestamp] {
            let t1 = run(scheme, 1, 1_000_000, 0.0).txn_per_sec();
            let t8 = run(scheme, 8, 1_000_000, 0.0).txn_per_sec();
            assert!(
                t8 > 5.0 * t1,
                "{scheme}: read-only should scale ~linearly ({t1:.0} → {t8:.0})"
            );
        }
    }

    #[test]
    fn contention_hurts_throughput() {
        // 8 cores fighting over 16 rows vs 1M rows.
        for scheme in CcScheme::NON_PARTITIONED {
            let uncontended = run(scheme, 8, 1_000_000, 0.5).txn_per_sec();
            let contended = run(scheme, 8, 16, 0.9).txn_per_sec();
            assert!(
                contended < uncontended,
                "{scheme}: contention should hurt ({contended:.0} !< {uncontended:.0})"
            );
        }
    }

    #[test]
    fn no_wait_aborts_under_contention() {
        let r = run(CcScheme::NoWait, 8, 16, 0.9);
        assert!(
            r.stats.total_aborts() > 0,
            "NO_WAIT must abort on conflicts"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(CcScheme::WaitDie, 4, 1000, 0.5);
        let b = run(CcScheme::WaitDie, 4, 1000, 0.5);
        assert_eq!(a.stats.commits, b.stats.commits);
        assert_eq!(a.stats.aborts, b.stats.aborts);
        assert_eq!(a.stats.breakdown, b.stats.breakdown);
    }

    #[test]
    fn breakdown_covers_the_run() {
        let r = run(CcScheme::DlDetect, 4, 1000, 0.5);
        let total = r.stats.breakdown.total();
        // 4 cores × measure window; allow slack for edge effects.
        let budget = 4 * 2_000_000u64;
        assert!(
            total > budget / 2 && total < budget * 11 / 10,
            "breakdown total {total} vs budget {budget}"
        );
    }
}
