//! The concurrency-control schemes and timestamp-allocation methods
//! evaluated by the paper (Tables 1 and Fig. 6), plus the modern
//! data-driven-timestamp schemes (Silo, TicToc) the repo adds on top of
//! the paper's seven.

use std::fmt;
use std::str::FromStr;

/// The seven concurrency-control schemes of Table 1 in the paper, plus
/// [`CcScheme::Silo`] and [`CcScheme::TicToc`] — the modern OCC variants
/// that need no per-transaction global timestamp at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CcScheme {
    /// 2PL with deadlock detection (partitioned waits-for graph).
    DlDetect,
    /// 2PL with non-waiting deadlock prevention: deny ⇒ abort.
    NoWait,
    /// 2PL with wait-die deadlock prevention: older waits, younger dies.
    WaitDie,
    /// Basic timestamp ordering with per-tuple read/write timestamps.
    Timestamp,
    /// Multi-version timestamp ordering (version chains per tuple).
    Mvcc,
    /// Optimistic concurrency control with per-tuple (distributed) validation.
    Occ,
    /// T/O with partition-level locking (H-Store / Smallbase model).
    HStore,
    /// Epoch-based OCC (Silo, SOSP'13): read-set TID recording, write-set
    /// locking + validation, epoch-composed commit TIDs. No centralized
    /// timestamp allocation anywhere on the commit path.
    Silo,
    /// Data-driven timestamp OCC (TicToc, SIGMOD'16): per-tuple `wts`/`rts`
    /// words, commit timestamps *computed* from the read/write sets, and
    /// commit-time `rts` extension in place of re-reads. Like SILO it
    /// allocates zero global timestamps; unlike SILO it needs no epoch
    /// fence on the commit path either.
    TicToc,
}

impl CcScheme {
    /// All schemes: the paper's seven in its order, then the modern
    /// additions. **The single source of truth** — tests, examples and the
    /// conformance matrix must derive their scheme lists from this array
    /// (or carry a sync guard against it) so a new variant cannot be
    /// silently skipped.
    pub const ALL: [CcScheme; 9] = [
        CcScheme::DlDetect,
        CcScheme::NoWait,
        CcScheme::WaitDie,
        CcScheme::Timestamp,
        CcScheme::Mvcc,
        CcScheme::Occ,
        CcScheme::HStore,
        CcScheme::Silo,
        CcScheme::TicToc,
    ];

    /// The classic-vs-modern comparison set (`fig_modern`): every classic
    /// scheme the modern OCC variants are benchmarked against, plus Silo
    /// and TicToc themselves.
    pub const MODERN_COMPARISON: [CcScheme; 6] = [
        CcScheme::DlDetect,
        CcScheme::NoWait,
        CcScheme::Timestamp,
        CcScheme::Occ,
        CcScheme::Silo,
        CcScheme::TicToc,
    ];

    /// The six schemes used in the non-partitioned experiments
    /// (H-STORE is only introduced in §5.5).
    pub const NON_PARTITIONED: [CcScheme; 6] = [
        CcScheme::DlDetect,
        CcScheme::NoWait,
        CcScheme::WaitDie,
        CcScheme::Timestamp,
        CcScheme::Mvcc,
        CcScheme::Occ,
    ];

    /// Is this scheme a two-phase-locking variant (vs timestamp ordering)?
    pub const fn is_two_phase_locking(self) -> bool {
        matches!(
            self,
            CcScheme::DlDetect | CcScheme::NoWait | CcScheme::WaitDie
        )
    }

    /// Does the scheme require a timestamp at transaction start?
    ///
    /// Everything except DL_DETECT, NO_WAIT, SILO and TICTOC needs one; OCC
    /// needs a second one before validation (handled by the engines). SILO
    /// replaces global timestamps with epoch-composed commit TIDs; TICTOC
    /// computes its commit timestamp from per-tuple `wts`/`rts` metadata.
    pub const fn needs_start_ts(self) -> bool {
        !matches!(
            self,
            CcScheme::DlDetect | CcScheme::NoWait | CcScheme::Silo | CcScheme::TicToc
        )
    }

    /// Do restarted transactions keep their original timestamp? WAIT_DIE's
    /// age-based priority depends on it (a restarted transaction must
    /// eventually become the oldest); every other timestamped scheme
    /// restarts with a fresh one (§2.2).
    pub const fn reuses_ts_on_restart(self) -> bool {
        matches!(self, CcScheme::WaitDie)
    }

    /// Does the scheme register every transaction with the engine's epoch
    /// subsystem, independent of logging? SILO composes commit TIDs from
    /// the epoch; TICTOC consumes it as its GC quiescence horizon. (With
    /// logging enabled the engine additionally registers *every* scheme,
    /// as the group-commit flush horizon.)
    pub const fn uses_epoch(self) -> bool {
        matches!(self, CcScheme::Silo | CcScheme::TicToc)
    }

    /// Must transactions declare and acquire their partition set at begin
    /// (H-STORE's "know what partitions each individual transaction will
    /// access before it begins", §2.2)?
    pub const fn partition_locked(self) -> bool {
        matches!(self, CcScheme::HStore)
    }

    /// Does the engine maintain a waits-for graph for this scheme
    /// (DL_DETECT's deadlock detection, §4.2)?
    pub const fn tracks_waits(self) -> bool {
        matches!(self, CcScheme::DlDetect)
    }

    /// Does a point access need a post-admission index re-probe to guard
    /// against a concurrently *committed* delete? TIMESTAMP tombstones
    /// deleted tuples (`wts = ∞`), and H-STORE's partition ownership
    /// excludes concurrent deleters — neither needs the probe.
    pub const fn guards_deleted_rows(self) -> bool {
        !matches!(self, CcScheme::Timestamp | CcScheme::HStore)
    }

    /// Multiplicative-increase gain of the adaptive backoff controller,
    /// in percent of the current delay per unit abort rate. The optimistic
    /// schemes burn a whole execution before discovering a conflict, so a
    /// high abort rate is worth aggressive restraint; the T/O schemes
    /// discover conflicts mid-flight and want moderate gains; the 2PL
    /// variants resolve contention in the lock table itself and barely
    /// benefit from backing off at all.
    pub const fn backoff_gain_pct(self) -> u32 {
        match self {
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => 100,
            CcScheme::Timestamp | CcScheme::Mvcc => 50,
            CcScheme::HStore => 25,
            CcScheme::DlDetect | CcScheme::NoWait | CcScheme::WaitDie => 10,
        }
    }

    /// Ceiling of the adaptive backoff delay in microseconds. OCC-family
    /// schemes tolerate long pauses (the delayed transaction would have
    /// aborted at validation anyway); 2PL variants must stay responsive or
    /// a backed-off lock holder stalls everyone queued behind it.
    pub const fn backoff_ceiling_us(self) -> u64 {
        match self {
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => 2_000,
            CcScheme::Timestamp | CcScheme::Mvcc => 1_000,
            CcScheme::HStore => 500,
            CcScheme::DlDetect | CcScheme::NoWait | CcScheme::WaitDie => 100,
        }
    }

    /// Can a statically read-only transaction skip the scheme's
    /// commit-time timestamp allocation? Only OCC draws a second (validation)
    /// timestamp at commit — for a transaction with an empty write set the
    /// validation window is empty and the allocation is pure hot-word
    /// traffic. Every other scheme either allocates nothing at commit or
    /// needs its commit serial regardless.
    pub const fn ro_commit_skips_ts(self) -> bool {
        matches!(self, CcScheme::Occ)
    }

    /// Number of timestamps allocated per (successful) transaction.
    pub fn timestamps_per_txn(self) -> u32 {
        match self {
            CcScheme::DlDetect | CcScheme::NoWait | CcScheme::Silo | CcScheme::TicToc => 0,
            CcScheme::Occ => 2,
            _ => 1,
        }
    }

    /// The short upper-case name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CcScheme::DlDetect => "DL_DETECT",
            CcScheme::NoWait => "NO_WAIT",
            CcScheme::WaitDie => "WAIT_DIE",
            CcScheme::Timestamp => "TIMESTAMP",
            CcScheme::Mvcc => "MVCC",
            CcScheme::Occ => "OCC",
            CcScheme::HStore => "HSTORE",
            CcScheme::Silo => "SILO",
            CcScheme::TicToc => "TICTOC",
        }
    }
}

impl fmt::Display for CcScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CcScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_uppercase().replace('-', "_");
        Self::ALL
            .into_iter()
            .find(|c| c.name() == norm || c.name().replace('_', "") == norm)
            .ok_or_else(|| format!("unknown concurrency-control scheme: {s:?}"))
    }
}

/// Timestamp-allocation methods from §4.3 / Fig. 6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TsMethod {
    /// A mutex around the counter — the naïve baseline.
    Mutex,
    /// A single atomic fetch-add; the cache line ping-pongs across the chip.
    Atomic,
    /// Atomic fetch-add that hands out `batch` timestamps at once (Silo).
    Batched { batch: u32 },
    /// Synchronized per-core clocks concatenated with the thread id.
    Clock,
    /// A hardware counter at the center of the chip, incremented remotely in
    /// one cycle (simulator only; no shipping CPU has this).
    Hardware,
}

impl TsMethod {
    /// The methods plotted in Fig. 6, in its legend order.
    pub const FIG6: [TsMethod; 6] = [
        TsMethod::Clock,
        TsMethod::Hardware,
        TsMethod::Batched { batch: 16 },
        TsMethod::Batched { batch: 8 },
        TsMethod::Atomic,
        TsMethod::Mutex,
    ];

    /// Short label as used in the paper's legends.
    pub fn label(self) -> String {
        match self {
            TsMethod::Mutex => "Mutex".into(),
            TsMethod::Atomic => "Atomic".into(),
            TsMethod::Batched { batch } => format!("Atomic batch={batch}"),
            TsMethod::Clock => "Clock".into(),
            TsMethod::Hardware => "HW Counter".into(),
        }
    }

    /// Whether a real (non-simulated) implementation exists on stock CPUs.
    pub fn realizable_on_host(self) -> bool {
        !matches!(self, TsMethod::Hardware)
    }
}

impl fmt::Display for TsMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scheme_names() {
        assert_eq!("DL_DETECT".parse::<CcScheme>().unwrap(), CcScheme::DlDetect);
        assert_eq!("no_wait".parse::<CcScheme>().unwrap(), CcScheme::NoWait);
        assert_eq!("wait-die".parse::<CcScheme>().unwrap(), CcScheme::WaitDie);
        assert_eq!("MVCC".parse::<CcScheme>().unwrap(), CcScheme::Mvcc);
        assert_eq!("hstore".parse::<CcScheme>().unwrap(), CcScheme::HStore);
        assert_eq!("silo".parse::<CcScheme>().unwrap(), CcScheme::Silo);
        assert_eq!("tictoc".parse::<CcScheme>().unwrap(), CcScheme::TicToc);
        assert!("lockfree".parse::<CcScheme>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in CcScheme::ALL {
            assert_eq!(s.to_string().parse::<CcScheme>().unwrap(), s);
        }
    }

    #[test]
    fn classification_matches_table1() {
        use CcScheme::*;
        for s in [DlDetect, NoWait, WaitDie] {
            assert!(s.is_two_phase_locking());
        }
        for s in [Timestamp, Mvcc, Occ, HStore, Silo, TicToc] {
            assert!(!s.is_two_phase_locking());
        }
    }

    #[test]
    fn timestamp_counts() {
        assert_eq!(CcScheme::Occ.timestamps_per_txn(), 2);
        assert_eq!(CcScheme::NoWait.timestamps_per_txn(), 0);
        assert_eq!(CcScheme::Mvcc.timestamps_per_txn(), 1);
        assert_eq!(CcScheme::Silo.timestamps_per_txn(), 0);
        assert_eq!(CcScheme::TicToc.timestamps_per_txn(), 0);
        assert!(CcScheme::WaitDie.needs_start_ts());
        assert!(!CcScheme::DlDetect.needs_start_ts());
        assert!(!CcScheme::Silo.needs_start_ts());
        assert!(!CcScheme::TicToc.needs_start_ts());
    }

    #[test]
    fn ts_method_labels() {
        assert_eq!(TsMethod::Batched { batch: 8 }.label(), "Atomic batch=8");
        assert!(TsMethod::Clock.realizable_on_host());
        assert!(!TsMethod::Hardware.realizable_on_host());
    }
}
