//! Identifier types shared across the workspace.
//!
//! These are plain aliases rather than newtypes: the hot paths of both the
//! engine and the simulator move these by the billions, and the paper's own
//! code (DBx1000) treats them as raw machine words. Where mixing ids up is a
//! plausible bug we use distinct parameter names and debug assertions at the
//! boundaries instead.

/// Identifies a table within a database catalog.
pub type TableId = u32;

/// A primary-key value. Both YCSB and our TPC-C encoding pack composite keys
/// into 64 bits (see `abyss-workload::tpcc::keys`).
pub type Key = u64;

/// Index of a row inside a table's storage arena.
pub type RowIdx = u64;

/// A transaction identifier, unique for the lifetime of a run.
pub type TxnId = u64;

/// A logical timestamp produced by one of the [`crate::scheme::TsMethod`]
/// allocators. Timestamp zero is reserved to mean "none".
pub type Ts = u64;

/// A (simulated or real) core / worker-thread identifier.
pub type CoreId = u32;

/// A horizontal partition identifier (H-STORE scheme).
pub type PartId = u32;

/// Reserved timestamp meaning "no timestamp assigned yet".
pub const TS_NONE: Ts = 0;

/// Reserved transaction id meaning "no transaction".
pub const TXN_NONE: TxnId = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_do_not_collide_with_plausible_values() {
        let (ts_none, txn_none) = (TS_NONE, TXN_NONE);
        assert_eq!(ts_none, 0);
        assert_ne!(txn_none, 0);
        assert!(txn_none > u64::MAX / 2);
    }
}
