//! Deterministic, allocation-free pseudo-random number generators.
//!
//! The simulator must be bit-for-bit reproducible across runs and platforms,
//! and the workload generators sit on the hot path (one Zipf draw per query).
//! We therefore implement SplitMix64 (for seeding) and xoshiro256** (the
//! workhorse) directly instead of pulling `rand`'s tower of traits into the
//! inner loops.

/// SplitMix64 — used to expand a single `u64` seed into generator state.
/// Passes BigCrush when used as a stream; here it only seeds xoshiro.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new stream from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 by Blackman & Vigna — fast, small, high quality.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid; SplitMix64 cannot produce four zero
        // outputs from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`. Uses the widening-multiply trick
    /// (Lemire); slight modulo bias is irrelevant at our bounds (< 2^33).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi]` inclusive.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from(42);
        let mut b = Xoshiro256::seed_from(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "seeds 1 and 2 produced {same}/64 identical values"
        );
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::seed_from(7);
        for bound in [1u64, 2, 3, 10, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = Xoshiro256::seed_from(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.next_range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "range endpoints never drawn");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Xoshiro256::seed_from(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_probability_is_calibrated() {
        let mut r = Xoshiro256::seed_from(13);
        let hits = (0..100_000).filter(|_| r.chance(0.2)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.2).abs() < 0.01, "p=0.2 measured {frac}");
    }

    #[test]
    fn splitmix_known_progression_is_stable() {
        // Golden values locked in so accidental algorithm changes fail loudly.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
        assert_eq!(second, 0x6E78_9E6A_A1B9_65F4);
    }
}
