//! Engine-agnostic transaction templates.
//!
//! The paper's test-bed feeds each worker a fixed-length queue of
//! transactions (§3.2). We represent a queued transaction as a
//! [`TxnTemplate`]: a list of tuple accesses plus enough structure for
//! TPC-C's data-dependent inserts (the NewOrder order id comes from the
//! `D_NEXT_O_ID` counter read earlier in the same transaction).
//!
//! Both the real engine (`abyss-core::executor`) and the simulator
//! (`abyss-sim::exec`) interpret these templates, so a workload generated
//! once drives both — exactly how Fig. 3 compares simulator and hardware.

use crate::ids::{Key, PartId, TableId};

/// Maximum number of counter slots a template may use (TPC-C needs 1).
pub const MAX_COUNTER_SLOTS: usize = 2;

/// What an access does to its tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// Read the tuple.
    Read,
    /// Read-modify-write the tuple.
    Update,
    /// Read-modify-write a counter column; the *pre-increment* value is
    /// captured into `slot` for later [`KeySpec::Derived`] keys.
    /// (TPC-C: `UPDATE district SET d_next_o_id = d_next_o_id + 1`.)
    UpdateCounter {
        /// Which counter slot receives the read value.
        slot: u8,
    },
    /// Insert a fresh tuple.
    Insert,
    /// Range-scan `len` consecutive keys starting at the access key
    /// (`[key, key + len)`), reading every tuple present in the range.
    /// Requires the target table to carry an ordered index.
    Scan {
        /// Number of consecutive keys the range covers.
        len: u32,
    },
}

impl AccessOp {
    /// Does the operation write?
    pub fn is_write(self) -> bool {
        !matches!(self, AccessOp::Read | AccessOp::Scan { .. })
    }
}

/// How the key of an access is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpec {
    /// A key fixed at generation time.
    Fixed(Key),
    /// `base + counter[slot] * scale` where the counter value was captured
    /// by an earlier [`AccessOp::UpdateCounter`] in the same transaction.
    /// Used for TPC-C ORDER / NEW-ORDER / ORDER-LINE inserts (the order id
    /// comes from `D_NEXT_O_ID`; `scale` packs it into composite keys).
    Derived {
        /// Counter slot captured earlier in this transaction.
        slot: u8,
        /// Added to the scaled counter value (e.g. packed district key or
        /// an order-line number).
        base: Key,
        /// Multiplier applied to the counter value (1 for plain offsets).
        scale: u32,
    },
}

impl KeySpec {
    /// Resolve the key given the transaction's captured counter values.
    #[inline]
    pub fn resolve(self, counters: &[Key; MAX_COUNTER_SLOTS]) -> Key {
        match self {
            KeySpec::Fixed(k) => k,
            KeySpec::Derived { slot, base, scale } => {
                base + counters[slot as usize] * Key::from(scale)
            }
        }
    }
}

/// One tuple access within a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSpec {
    /// Target table.
    pub table: TableId,
    /// Target key.
    pub key: KeySpec,
    /// Operation.
    pub op: AccessOp,
}

impl AccessSpec {
    /// Convenience constructor for a fixed-key access.
    pub fn fixed(table: TableId, key: Key, op: AccessOp) -> Self {
        Self {
            table,
            key: KeySpec::Fixed(key),
            op,
        }
    }
}

/// A complete queued transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnTemplate {
    /// The tuple accesses, executed in order (queries run serially within a
    /// transaction, §3.2).
    pub accesses: Vec<AccessSpec>,
    /// Partitions this transaction touches — required *a priori* by H-STORE
    /// (§2.2) and ignored by the other schemes.
    pub partitions: Vec<PartId>,
    /// If true, the transaction aborts itself after executing all accesses
    /// (TPC-C NewOrder invalid-item rule, §5.6). User aborts still roll back.
    pub user_abort: bool,
    /// Units of extra computation between queries, in abstract "logic ticks"
    /// (YCSB performs none; TPC-C performs a little per query).
    pub logic_per_query: u32,
    /// Workload-defined transaction type (TPC-C: 0 = Payment, 1 = NewOrder).
    /// Reported separately in per-type throughput figures (Figs 16–17).
    pub tag: u8,
}

impl TxnTemplate {
    /// A template over fixed-key accesses with no program logic.
    pub fn new(accesses: Vec<AccessSpec>) -> Self {
        Self {
            accesses,
            partitions: Vec::new(),
            user_abort: false,
            logic_per_query: 0,
            tag: 0,
        }
    }

    /// Number of accesses (the paper's "transaction length").
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if the template performs no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Does the transaction perform any write?
    pub fn is_read_only(&self) -> bool {
        self.accesses.iter().all(|a| !a.op.is_write())
    }

    /// Is this a multi-partition transaction (H-STORE sense)?
    pub fn is_multi_partition(&self) -> bool {
        self.partitions.len() > 1
    }

    /// Validate internal consistency: derived keys must reference a counter
    /// slot captured by an earlier access, slots must be in range.
    pub fn validate(&self) -> Result<(), String> {
        let mut captured = [false; MAX_COUNTER_SLOTS];
        for (i, a) in self.accesses.iter().enumerate() {
            if let AccessOp::UpdateCounter { slot } = a.op {
                let s = slot as usize;
                if s >= MAX_COUNTER_SLOTS {
                    return Err(format!("access {i}: counter slot {slot} out of range"));
                }
                captured[s] = true;
            }
            if let KeySpec::Derived { slot, .. } = a.key {
                let s = slot as usize;
                if s >= MAX_COUNTER_SLOTS {
                    return Err(format!("access {i}: derived slot {slot} out of range"));
                }
                if !captured[s] {
                    return Err(format!(
                        "access {i}: derived key uses slot {slot} before any UpdateCounter"
                    ));
                }
                if !matches!(a.op, AccessOp::Insert) {
                    return Err(format!(
                        "access {i}: derived keys are only valid for inserts"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(table: TableId, key: Key) -> AccessSpec {
        AccessSpec::fixed(table, key, AccessOp::Read)
    }

    #[test]
    fn read_only_detection() {
        let t = TxnTemplate::new(vec![read(0, 1), read(0, 2)]);
        assert!(t.is_read_only());
        let mut t2 = t.clone();
        t2.accesses.push(AccessSpec::fixed(0, 3, AccessOp::Update));
        assert!(!t2.is_read_only());
        assert_eq!(t2.len(), 3);
    }

    #[test]
    fn multi_partition_detection() {
        let mut t = TxnTemplate::new(vec![read(0, 1)]);
        assert!(!t.is_multi_partition());
        t.partitions = vec![0, 3];
        assert!(t.is_multi_partition());
    }

    #[test]
    fn validate_accepts_tpcc_shape() {
        // district counter update, then order insert keyed off the counter.
        let t = TxnTemplate::new(vec![
            AccessSpec {
                table: 1,
                key: KeySpec::Fixed(7),
                op: AccessOp::UpdateCounter { slot: 0 },
            },
            AccessSpec {
                table: 2,
                key: KeySpec::Derived {
                    slot: 0,
                    base: 1 << 32,
                    scale: 1,
                },
                op: AccessOp::Insert,
            },
        ]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_uncaptured_slot() {
        let t = TxnTemplate::new(vec![AccessSpec {
            table: 2,
            key: KeySpec::Derived {
                slot: 0,
                base: 0,
                scale: 1,
            },
            op: AccessOp::Insert,
        }]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_derived_read() {
        let t = TxnTemplate::new(vec![
            AccessSpec {
                table: 1,
                key: KeySpec::Fixed(7),
                op: AccessOp::UpdateCounter { slot: 0 },
            },
            AccessSpec {
                table: 2,
                key: KeySpec::Derived {
                    slot: 0,
                    base: 0,
                    scale: 1,
                },
                op: AccessOp::Read,
            },
        ]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_slot() {
        let t = TxnTemplate::new(vec![AccessSpec {
            table: 1,
            key: KeySpec::Fixed(7),
            op: AccessOp::UpdateCounter { slot: 9 },
        }]);
        assert!(t.validate().is_err());
    }
}
