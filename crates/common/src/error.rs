//! Abort and error taxonomy.
//!
//! The paper distinguishes aborts caused by the scheduler (conflicts,
//! deadlocks, validation failures, timeouts) from aborts demanded by the
//! transaction's own program logic (TPC-C NewOrder's 1% invalid-item rule).
//! Keeping the reason on every abort lets the harness report abort *rates by
//! cause*, which Figs. 5, 9 and 10 rely on.

use std::fmt;

/// Why a transaction aborted. Scheduler-induced aborts are retried by the
/// workers; [`AbortReason::UserAbort`] is final.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A lock request was denied and the scheme does not wait (NO_WAIT).
    LockConflict,
    /// The deadlock detector chose this transaction as the victim.
    Deadlock,
    /// Wait-die: a younger transaction requested a lock held by an older one.
    WaitDieKilled,
    /// The transaction waited longer than the configured timeout (Fig. 5).
    WaitTimeout,
    /// A timestamp-ordering rule was violated (read-too-late / write-too-late).
    TsOrderViolation,
    /// OCC validation found an overlapping conflict.
    ValidationFail,
    /// MVCC detected that a write would invalidate an already-served read.
    MvccWriteConflict,
    /// The transaction's own logic aborted (e.g. TPC-C invalid item).
    UserAbort,
}

impl AbortReason {
    /// Scheduler aborts are retried; user aborts are not.
    pub fn is_retryable(self) -> bool {
        !matches!(self, AbortReason::UserAbort)
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::LockConflict => "lock_conflict",
            AbortReason::Deadlock => "deadlock",
            AbortReason::WaitDieKilled => "wait_die_killed",
            AbortReason::WaitTimeout => "wait_timeout",
            AbortReason::TsOrderViolation => "ts_order",
            AbortReason::ValidationFail => "validation",
            AbortReason::MvccWriteConflict => "mvcc_write",
            AbortReason::UserAbort => "user",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Non-abort errors surfaced by the database API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The requested table does not exist in the catalog.
    NoSuchTable(u32),
    /// The requested key does not exist in the index.
    KeyNotFound { table: u32, key: u64 },
    /// A key was inserted twice.
    DuplicateKey { table: u32, key: u64 },
    /// A schema/row-layout mismatch (column out of range, wrong width).
    SchemaViolation(String),
    /// Operation not supported by the active concurrency-control scheme.
    Unsupported(&'static str),
    /// A durability I/O failure (WAL open, replay scan, truncation).
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::KeyNotFound { table, key } => {
                write!(f, "key {key} not found in table {table}")
            }
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table {table}")
            }
            DbError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            DbError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            DbError::Io(msg) => write!(f, "durability I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_aborts_are_final() {
        assert!(!AbortReason::UserAbort.is_retryable());
        for r in [
            AbortReason::LockConflict,
            AbortReason::Deadlock,
            AbortReason::WaitDieKilled,
            AbortReason::WaitTimeout,
            AbortReason::TsOrderViolation,
            AbortReason::ValidationFail,
            AbortReason::MvccWriteConflict,
        ] {
            assert!(r.is_retryable(), "{r} should be retryable");
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = DbError::KeyNotFound { table: 3, key: 42 };
        assert_eq!(e.to_string(), "key 42 not found in table 3");
        assert_eq!(DbError::NoSuchTable(1).to_string(), "no such table: 1");
    }
}
