//! FxHash-style hashing for integer keys.
//!
//! The default SipHash is a measurable cost on the index probe path (the
//! perf-book's "Hashing" chapter); rustc's Fx multiply-xor hash is the
//! standard fast alternative for trusted integer keys. Implemented here
//! (~20 lines) rather than adding a dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher used by rustc.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` — used by the hash index and the L2-slice hash.
///
/// Uses the SplitMix64 finalizer rather than the Fx multiply: bucket
/// selection takes the *low* bits of the result, and a bare multiply leaves
/// them badly mixed for sequential keys.
#[inline]
pub fn hash_u64(mut v: u64) -> u64 {
    v = (v ^ (v >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v = (v ^ (v >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    v ^ (v >> 31)
}

/// Hash a byte slice — WAL record checksums and state digests.
///
/// [`FxHasher`] over the bytes plus the length (so a zero-padded tail
/// cannot alias a shorter input), finished through the SplitMix64
/// finalizer so short inputs still avalanche into the low bits.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.write_usize(bytes.len());
    hash_u64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hash_u64_spreads_sequential_keys() {
        // Sequential keys must not collide in the low bits (bucket index).
        let buckets = 1024u64;
        let mut seen = FxHashSet::default();
        for k in 0..buckets {
            seen.insert(hash_u64(k) % buckets);
        }
        assert!(
            seen.len() > (buckets as usize) / 2,
            "only {} distinct buckets out of {buckets}",
            seen.len()
        );
    }

    #[test]
    fn hasher_handles_unaligned_tails() {
        let mut h1 = FxHasher::default();
        h1.write(b"hello world!!");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world!?");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn hash_bytes_length_sensitive() {
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_eq!(hash_bytes(b"redo"), hash_bytes(b"redo"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn deterministic() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u64(0xdead_beef);
        h2.write_u64(0xdead_beef);
        assert_eq!(h1.finish(), h2.finish());
    }
}
