//! # abyss-common
//!
//! Shared foundation for the **abyss** reproduction of *Staring into the
//! Abyss: An Evaluation of Concurrency Control with One Thousand Cores*
//! (Yu et al., VLDB 2014).
//!
//! This crate holds everything that the storage layer, the real
//! multi-threaded engine (`abyss-core`), the many-core simulator
//! (`abyss-sim`) and the workload generators (`abyss-workload`) need to
//! agree on:
//!
//! * identifier types ([`ids`]),
//! * the seven concurrency-control schemes and five timestamp-allocation
//!   methods evaluated by the paper ([`scheme`]),
//! * abort/error taxonomy ([`error`]),
//! * the six-category time breakdown used throughout the paper's evaluation
//!   plus run-level statistics ([`stats`]),
//! * a fixed-bucket HDR-style latency histogram for per-attempt commit and
//!   abort latency percentiles ([`histo`]),
//! * a deterministic, allocation-free RNG ([`rng`]) and the Gray et al.
//!   Zipfian generator used by YCSB ([`zipf`]),
//! * a fast FxHash-style hasher for integer keys ([`fxhash`]),
//! * engine-agnostic transaction templates ([`txn`]) so that the same
//!   generated workload runs unmodified on both the real engine and the
//!   simulator,
//! * the repo-wide cache-line padding newtypes for contended words
//!   ([`pad`]) and the thread→core pinning primitive + placement policies
//!   the engine and bench harness share ([`affinity`]).

pub mod affinity;
pub mod error;
pub mod fxhash;
pub mod histo;
pub mod ids;
pub mod pad;
pub mod rng;
pub mod scheme;
pub mod stats;
pub mod txn;
pub mod zipf;

pub use affinity::{
    available_cores, current_cpu, current_node, numa_topology, pin_to_core, NumaTopology, PinPolicy,
};
pub use error::{AbortReason, DbError};
pub use histo::LatencyHisto;
pub use ids::{CoreId, Key, PartId, RowIdx, TableId, Ts, TxnId};
pub use pad::{PadWrap, Padded, Unpadded};
pub use scheme::{CcScheme, TsMethod};
pub use stats::{Category, Phase, PhaseBreakdown, Priority, RunStats, TimeBreakdown};
pub use txn::{AccessOp, AccessSpec, KeySpec, TxnTemplate};
