//! Run statistics and the six-category time breakdown from §3.2 of the
//! paper (USEFUL WORK, ABORT, TS ALLOCATION, INDEX, WAIT, MANAGER).
//!
//! Time units are deliberately abstract: the simulator accounts in cycles,
//! the real engine in nanoseconds. Ratios (what the breakdown figures plot)
//! are unit-free.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::error::AbortReason;
use crate::histo::LatencyHisto;

/// Where a slice of a worker's time went (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Executing application logic and operating on tuples.
    UsefulWork,
    /// Rolling back changes of aborted transactions (and re-done work).
    Abort,
    /// Acquiring a unique timestamp from the allocator.
    TsAlloc,
    /// Hash-index probes, including bucket latching.
    Index,
    /// Waiting for locks or for not-yet-ready tuple values.
    Wait,
    /// Lock-manager / timestamp-manager bookkeeping (excluding waits).
    Manager,
}

impl Category {
    /// All categories in the paper's legend order.
    pub const ALL: [Category; 6] = [
        Category::UsefulWork,
        Category::Abort,
        Category::TsAlloc,
        Category::Index,
        Category::Wait,
        Category::Manager,
    ];

    /// Label as printed in the breakdown figures.
    pub fn label(self) -> &'static str {
        match self {
            Category::UsefulWork => "Useful Work",
            Category::Abort => "Abort",
            Category::TsAlloc => "Ts Alloc.",
            Category::Index => "Index",
            Category::Wait => "Wait",
            Category::Manager => "Manager",
        }
    }

    fn idx(self) -> usize {
        match self {
            Category::UsefulWork => 0,
            Category::Abort => 1,
            Category::TsAlloc => 2,
            Category::Index => 3,
            Category::Wait => 4,
            Category::Manager => 5,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated time per [`Category`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    buckets: [u64; 6],
}

impl TimeBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `amount` time units to `cat`.
    #[inline]
    pub fn record(&mut self, cat: Category, amount: u64) {
        self.buckets[cat.idx()] += amount;
    }

    /// Time accumulated in `cat`.
    pub fn get(&self, cat: Category) -> u64 {
        self.buckets[cat.idx()]
    }

    /// Total time across all categories.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of total time in `cat` (0 if the breakdown is empty).
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(cat) as f64 / total as f64
        }
    }

    /// Normalized fractions in [`Category::ALL`] order — what the stacked
    /// bar charts (Figs 8b, 9b, 10b, 12b) plot.
    pub fn fractions(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        for (i, c) in Category::ALL.into_iter().enumerate() {
            out[i] = self.fraction(c);
        }
        out
    }
}

impl Add for TimeBreakdown {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets) {
            *a += b;
        }
    }
}

/// Where a nanosecond of an *attempt* went — the wall-clock counterpart of
/// [`Category`], extended with an explicit `Logging` phase (the paper
/// predates durability; our WAL append is real time that would otherwise
/// hide inside `Manager`).
///
/// The engine's `PhaseClock` stamps transitions at the instrumentation
/// seams and the simulator surfaces its per-component cycle charges under
/// the same enum, so sim and engine breakdowns are directly comparable.
/// Unlike [`Category`] (which several schemes feed piecemeal), `phase_ns`
/// is conservative: per attempt, the seven buckets partition the interval
/// from `attempt_started` to commit/abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Executing application logic and operating on tuples.
    UsefulWork,
    /// Acquiring a unique timestamp from the allocator.
    TsAlloc,
    /// Index probes: hash buckets, B+-tree descent, range-scan traversal.
    Index,
    /// Parked on a lock or a not-yet-ready tuple value.
    Wait,
    /// CC bookkeeping: lock/ts-manager work, validation, commit/release.
    Manager,
    /// Rollback plus the wasted (non-wait) time of the aborted attempt.
    Abort,
    /// Serializing and appending the commit record to the WAL.
    Logging,
}

impl Phase {
    /// Number of phases (array size for [`PhaseBreakdown`]).
    pub const COUNT: usize = 7;

    /// All phases in display order (paper legend order, then Logging).
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::UsefulWork,
        Phase::Abort,
        Phase::TsAlloc,
        Phase::Index,
        Phase::Wait,
        Phase::Manager,
        Phase::Logging,
    ];

    /// Label as printed in breakdown tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::UsefulWork => "Useful Work",
            Phase::Abort => "Abort",
            Phase::TsAlloc => "Ts Alloc.",
            Phase::Index => "Index",
            Phase::Wait => "Wait",
            Phase::Manager => "Manager",
            Phase::Logging => "Logging",
        }
    }

    /// Short machine-readable key (JSON / Prometheus label values).
    pub fn key(self) -> &'static str {
        match self {
            Phase::UsefulWork => "useful",
            Phase::Abort => "abort",
            Phase::TsAlloc => "ts_alloc",
            Phase::Index => "index",
            Phase::Wait => "wait",
            Phase::Manager => "manager",
            Phase::Logging => "logging",
        }
    }

    /// The §3.2 category this phase folds into (Logging → Manager; the
    /// paper had no durability, so WAL time is manager overhead there).
    pub fn legacy_category(self) -> Category {
        match self {
            Phase::UsefulWork => Category::UsefulWork,
            Phase::Abort => Category::Abort,
            Phase::TsAlloc => Category::TsAlloc,
            Phase::Index => Category::Index,
            Phase::Wait => Category::Wait,
            Phase::Manager | Phase::Logging => Category::Manager,
        }
    }

    /// Dense array index (stable across [`Phase::ALL`] reorderings).
    pub const fn idx(self) -> usize {
        match self {
            Phase::UsefulWork => 0,
            Phase::TsAlloc => 1,
            Phase::Index => 2,
            Phase::Wait => 3,
            Phase::Manager => 4,
            Phase::Abort => 5,
            Phase::Logging => 6,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated attempt time per [`Phase`], in nanoseconds (engine) or
/// cycles (simulator — 1 cycle ≈ 1 ns at the modeled 1 GHz clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    buckets: [u64; Phase::COUNT],
}

impl PhaseBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `amount` time units to `phase`.
    #[inline]
    pub fn record(&mut self, phase: Phase, amount: u64) {
        self.buckets[phase.idx()] += amount;
    }

    /// Time accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.buckets[phase.idx()]
    }

    /// Total time across all phases.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of total time in `phase` (0 if the breakdown is empty).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }

    /// Normalized fractions in [`Phase::ALL`] order.
    pub fn fractions(&self) -> [f64; Phase::COUNT] {
        let mut out = [0.0; Phase::COUNT];
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            out[i] = self.fraction(p);
        }
        out
    }

    /// Serialize as a JSON object keyed by [`Phase::key`]: raw
    /// accumulated time plus normalized fractions, the shape the
    /// `fig_breakdown` harness and the `--breakdown` example emit.
    pub fn to_json(&self) -> String {
        let ns: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("\"{}\":{}", p.key(), self.get(p)))
            .collect();
        let frac: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("\"{}\":{:.4}", p.key(), self.fraction(p)))
            .collect();
        format!(
            "{{\"ns\":{{{}}},\"fractions\":{{{}}}}}",
            ns.join(","),
            frac.join(",")
        )
    }

    /// Fold into the six-category §3.2 breakdown (Logging → Manager).
    pub fn to_legacy(&self) -> TimeBreakdown {
        let mut out = TimeBreakdown::new();
        for p in Phase::ALL {
            out.record(p.legacy_category(), self.get(p));
        }
        out
    }
}

impl Add for PhaseBreakdown {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets) {
            *a += b;
        }
    }
}

/// Service priority class of a submitted transaction.
///
/// The serving layer (`abyss-core`'s `serve` module) queues requests in two
/// classes: `High` (latency-sensitive, dequeued preferentially) and `Low`
/// (bulk). Stats index per-class counters by [`Priority::idx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive: dequeued preferentially, shed last.
    High,
    /// Bulk / best-effort: shed first under overload.
    Low,
}

impl Priority {
    /// Number of priority classes (array size for per-class stats).
    pub const COUNT: usize = 2;

    /// All classes in display order.
    pub const ALL: [Priority; Priority::COUNT] = [Priority::High, Priority::Low];

    /// Dense array index.
    pub const fn idx(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Low => 1,
        }
    }

    /// Short machine-readable key (JSON / Prometheus label values).
    pub fn key(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Statistics for one benchmark run (one worker, or merged over workers).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Committed transactions.
    pub commits: u64,
    /// Commits per workload-defined transaction tag (TPC-C: 0 = Payment,
    /// 1 = NewOrder). Figs 16–17 plot these separately. The final slot is
    /// the explicit "other" bucket for tags ≥ [`RunStats::TAG_BUCKETS`].
    pub commits_by_tag: [u64; RunStats::TAG_BUCKETS + 1],
    /// Aborts, by cause. Index order follows [`RunStats::ABORT_ORDER`].
    pub aborts: [u64; 8],
    /// Tuples accessed by committed transactions (Fig. 12's y-axis).
    pub tuples_committed: u64,
    /// Elapsed time units (cycles or nanoseconds) covered by the run.
    pub elapsed: u64,
    /// Time breakdown across the six §3.2 categories.
    pub breakdown: TimeBreakdown,
    /// Conservative per-attempt phase accounting (seven phases, includes
    /// Logging). Empty unless the engine runs with `breakdown` enabled;
    /// the simulator always fills it (its charges are free to attribute).
    pub phase_ns: PhaseBreakdown,
    /// Timestamps allocated (for the Fig. 6 micro-benchmark).
    pub ts_allocated: u64,
    /// Range scans executed (committed or not).
    pub scans: u64,
    /// Range-scan restarts: optimistic B+-tree retries plus scheme-level
    /// leaf revalidation retries. An index-health signal — a rising
    /// retry-per-scan ratio means scans are fighting structural churn.
    pub scan_retries: u64,
    /// TICTOC: commit-time `rts` extensions — reads validated by advancing
    /// the tuple's read timestamp with a CAS instead of aborting. The
    /// scheme's signature fast path; a contended read-heavy run that
    /// reports zero extensions means the path is silently disabled.
    pub rts_extensions: u64,
    /// WAL commit records appended (logging enabled only).
    pub log_records: u64,
    /// WAL bytes appended (frame + body; logging enabled only).
    pub log_bytes: u64,
    /// WAL buffer drains to the OS (filled in by the run drivers from the
    /// shared log's counters after the workers join).
    pub log_flushes: u64,
    /// WAL fsync calls (driver-filled, like [`RunStats::log_flushes`]).
    pub log_fsyncs: u64,
    /// Epochs between the run's final epoch and its durable epoch before
    /// the shutdown flush — the group-commit acknowledgement lag.
    pub durable_epoch_lag: u64,
    /// Latency of committed attempts, begin → commit acknowledgement
    /// (nanoseconds in the engine, cycles in the simulator).
    pub commit_latency: LatencyHisto,
    /// Latency of aborted attempts, begin → abort. Together with
    /// [`RunStats::commit_latency`] this covers every attempt, so wasted
    /// time under retries is visible, not just the winning attempt.
    pub abort_latency: LatencyHisto,
    /// Adaptive-backoff pauses taken (one per aborted attempt that waited
    /// a nonzero delay; zero when the controller is disabled).
    pub backoffs: u64,
    /// Total nanoseconds requested by the adaptive backoff controller
    /// (the delays handed to the spin/yield/sleep ladder, pre-jitter).
    pub backoff_ns: u64,
    /// The controller's final per-worker delay in nanoseconds — a gauge,
    /// merged by max across workers: where the feedback loop settled.
    pub backoff_delay_ns: u64,
    /// Requests shed at admission by the serving layer, per priority class
    /// (indexed by [`Priority::idx`]). Zero for closed-loop runs.
    pub sheds: [u64; Priority::COUNT],
    /// Queue-to-ack latency per priority class: submit → ticket resolution,
    /// covering queueing delay plus execution (indexed by
    /// [`Priority::idx`]). Empty for closed-loop runs.
    pub queue_ack_latency: [LatencyHisto; Priority::COUNT],
}

impl RunStats {
    /// Named per-tag commit buckets. Workload tags `0..TAG_BUCKETS` get
    /// their own slot in [`RunStats::commits_by_tag`]; anything beyond
    /// lands in the explicit [`RunStats::TAG_OTHER`] overflow bucket
    /// instead of silently aliasing the last named tag.
    pub const TAG_BUCKETS: usize = 4;
    /// Index of the overflow bucket in [`RunStats::commits_by_tag`].
    pub const TAG_OTHER: usize = Self::TAG_BUCKETS;

    /// Order of the abort-reason buckets in [`RunStats::aborts`].
    pub const ABORT_ORDER: [AbortReason; 8] = [
        AbortReason::LockConflict,
        AbortReason::Deadlock,
        AbortReason::WaitDieKilled,
        AbortReason::WaitTimeout,
        AbortReason::TsOrderViolation,
        AbortReason::ValidationFail,
        AbortReason::MvccWriteConflict,
        AbortReason::UserAbort,
    ];

    /// Bucket of `reason` in [`RunStats::aborts`] — a constant lookup (the
    /// abort path of every contended run hits this), kept in lock-step
    /// with [`RunStats::ABORT_ORDER`] by a test.
    const fn abort_idx(reason: AbortReason) -> usize {
        match reason {
            AbortReason::LockConflict => 0,
            AbortReason::Deadlock => 1,
            AbortReason::WaitDieKilled => 2,
            AbortReason::WaitTimeout => 3,
            AbortReason::TsOrderViolation => 4,
            AbortReason::ValidationFail => 5,
            AbortReason::MvccWriteConflict => 6,
            AbortReason::UserAbort => 7,
        }
    }

    /// Record one abort.
    #[inline]
    pub fn record_abort(&mut self, reason: AbortReason) {
        self.aborts[Self::abort_idx(reason)] += 1;
    }

    /// Record one commit of a transaction with workload tag `tag`. Tags
    /// beyond [`RunStats::TAG_BUCKETS`] are counted under
    /// [`RunStats::TAG_OTHER`]; debug builds flag them so a new workload
    /// tag widens the named buckets instead of vanishing into "other".
    #[inline]
    pub fn record_commit(&mut self, tag: u8) {
        self.commits += 1;
        debug_assert!(
            (tag as usize) < Self::TAG_BUCKETS,
            "txn tag {tag} has no named bucket — widen RunStats::TAG_BUCKETS"
        );
        let idx = if (tag as usize) < Self::TAG_BUCKETS {
            tag as usize
        } else {
            Self::TAG_OTHER
        };
        self.commits_by_tag[idx] += 1;
    }

    /// Aborts for one reason.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.aborts[Self::abort_idx(reason)]
    }

    /// Total aborts across all causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Abort rate: aborts / (aborts + commits). 0 for an empty run.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.total_aborts() + self.commits;
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }

    /// Throughput in transactions per time unit (caller scales by the unit).
    pub fn throughput_per_unit(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.commits as f64 / self.elapsed as f64
        }
    }

    /// Merge per-worker stats into a run total. `elapsed` is the max (the
    /// workers run concurrently), everything else sums.
    pub fn merge(&mut self, other: &RunStats) {
        self.commits += other.commits;
        for (a, b) in self.commits_by_tag.iter_mut().zip(other.commits_by_tag) {
            *a += b;
        }
        for (a, b) in self.aborts.iter_mut().zip(other.aborts) {
            *a += b;
        }
        self.tuples_committed += other.tuples_committed;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.breakdown += other.breakdown;
        self.phase_ns += other.phase_ns;
        self.ts_allocated += other.ts_allocated;
        self.scans += other.scans;
        self.scan_retries += other.scan_retries;
        self.rts_extensions += other.rts_extensions;
        self.log_records += other.log_records;
        self.log_bytes += other.log_bytes;
        self.log_flushes += other.log_flushes;
        self.log_fsyncs += other.log_fsyncs;
        self.durable_epoch_lag = self.durable_epoch_lag.max(other.durable_epoch_lag);
        self.backoffs += other.backoffs;
        self.backoff_ns += other.backoff_ns;
        self.backoff_delay_ns = self.backoff_delay_ns.max(other.backoff_delay_ns);
        self.commit_latency += &other.commit_latency;
        self.abort_latency += &other.abort_latency;
        for (a, b) in self.sheds.iter_mut().zip(other.sheds) {
            *a += b;
        }
        for (a, b) in self
            .queue_ack_latency
            .iter_mut()
            .zip(other.queue_ack_latency.iter())
        {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = TimeBreakdown::new();
        b.record(Category::UsefulWork, 60);
        b.record(Category::Wait, 30);
        b.record(Category::Index, 10);
        let total: f64 = b.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((b.fraction(Category::UsefulWork) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let b = TimeBreakdown::new();
        assert_eq!(b.fraction(Category::Wait), 0.0);
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn breakdown_addition() {
        let mut a = TimeBreakdown::new();
        a.record(Category::Manager, 5);
        let mut b = TimeBreakdown::new();
        b.record(Category::Manager, 7);
        b.record(Category::Abort, 3);
        let c = a + b;
        assert_eq!(c.get(Category::Manager), 12);
        assert_eq!(c.get(Category::Abort), 3);
    }

    #[test]
    fn abort_bookkeeping() {
        let mut s = RunStats {
            commits: 90,
            ..Default::default()
        };
        s.record_abort(AbortReason::Deadlock);
        s.record_abort(AbortReason::Deadlock);
        s.record_abort(AbortReason::ValidationFail);
        assert_eq!(s.aborts_for(AbortReason::Deadlock), 2);
        assert_eq!(s.total_aborts(), 3);
        assert!((s.abort_rate() - 3.0 / 93.0).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_max_elapsed_and_sums_counts() {
        let mut a = RunStats {
            commits: 10,
            elapsed: 100,
            ..Default::default()
        };
        let b = RunStats {
            commits: 20,
            elapsed: 80,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 30);
        assert_eq!(a.elapsed, 100);
    }

    #[test]
    fn throughput_handles_empty_run() {
        let s = RunStats::default();
        assert_eq!(s.throughput_per_unit(), 0.0);
    }

    #[test]
    fn abort_idx_matches_abort_order() {
        // The const lookup must stay in lock-step with ABORT_ORDER.
        for (i, r) in RunStats::ABORT_ORDER.into_iter().enumerate() {
            let mut s = RunStats::default();
            s.record_abort(r);
            assert_eq!(s.aborts[i], 1, "{r:?} must land in bucket {i}");
        }
    }

    #[test]
    fn named_tags_get_their_own_bucket() {
        let mut s = RunStats::default();
        for tag in 0..RunStats::TAG_BUCKETS as u8 {
            s.record_commit(tag);
        }
        for tag in 0..RunStats::TAG_BUCKETS {
            assert_eq!(s.commits_by_tag[tag], 1);
        }
        assert_eq!(s.commits_by_tag[RunStats::TAG_OTHER], 0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn overflow_tags_land_in_other_bucket() {
        // Release semantics: an unnamed tag is counted, visibly, as
        // "other" — never aliased into the last named bucket.
        let mut s = RunStats::default();
        s.record_commit(RunStats::TAG_BUCKETS as u8);
        s.record_commit(u8::MAX);
        assert_eq!(s.commits_by_tag[RunStats::TAG_OTHER], 2);
        assert_eq!(s.commits_by_tag[RunStats::TAG_BUCKETS - 1], 0);
        assert_eq!(s.commits, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "no named bucket")]
    fn overflow_tag_panics_in_debug() {
        let mut s = RunStats::default();
        s.record_commit(RunStats::TAG_BUCKETS as u8);
    }

    #[test]
    fn phase_fractions_sum_to_one_and_fold_to_legacy() {
        let mut p = PhaseBreakdown::new();
        p.record(Phase::UsefulWork, 50);
        p.record(Phase::Wait, 30);
        p.record(Phase::Manager, 12);
        p.record(Phase::Logging, 8);
        let total: f64 = p.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(p.total(), 100);
        // Logging folds into Manager in the legacy six-category view.
        let legacy = p.to_legacy();
        assert_eq!(legacy.get(Category::Manager), 20);
        assert_eq!(legacy.get(Category::UsefulWork), 50);
        assert_eq!(legacy.total(), p.total());
    }

    #[test]
    fn phase_idx_is_a_bijection() {
        let mut seen = [false; Phase::COUNT];
        for p in Phase::ALL {
            assert!(!seen[p.idx()], "{p:?} reuses index {}", p.idx());
            seen[p.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn merge_sums_phase_ns() {
        let mut a = RunStats::default();
        a.phase_ns.record(Phase::Index, 5);
        let mut b = RunStats::default();
        b.phase_ns.record(Phase::Index, 7);
        b.phase_ns.record(Phase::Abort, 3);
        a.merge(&b);
        assert_eq!(a.phase_ns.get(Phase::Index), 12);
        assert_eq!(a.phase_ns.get(Phase::Abort), 3);
    }

    #[test]
    fn merge_sums_sheds_and_queue_latency() {
        let mut a = RunStats::default();
        a.sheds[Priority::Low.idx()] = 3;
        a.queue_ack_latency[Priority::High.idx()].record(50);
        let mut b = RunStats::default();
        b.sheds[Priority::Low.idx()] = 4;
        b.sheds[Priority::High.idx()] = 1;
        b.queue_ack_latency[Priority::High.idx()].record(70);
        b.queue_ack_latency[Priority::Low.idx()].record(900);
        a.merge(&b);
        assert_eq!(a.sheds, [1, 7]);
        assert_eq!(a.queue_ack_latency[Priority::High.idx()].count(), 2);
        assert_eq!(a.queue_ack_latency[Priority::Low.idx()].count(), 1);
    }

    #[test]
    fn priority_idx_is_a_bijection() {
        let mut seen = [false; Priority::COUNT];
        for p in Priority::ALL {
            assert!(!seen[p.idx()], "{p:?} reuses index {}", p.idx());
            seen[p.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn merge_sums_backoffs_and_maxes_delay_gauge() {
        let mut a = RunStats {
            backoffs: 2,
            backoff_ns: 1_000,
            backoff_delay_ns: 500,
            ..Default::default()
        };
        let b = RunStats {
            backoffs: 3,
            backoff_ns: 9_000,
            backoff_delay_ns: 300,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.backoffs, 5);
        assert_eq!(a.backoff_ns, 10_000);
        // The settled-delay gauge takes the max, not the sum.
        assert_eq!(a.backoff_delay_ns, 500);
    }

    #[test]
    fn merge_combines_latency_histograms() {
        let mut a = RunStats::default();
        a.commit_latency.record(100);
        a.abort_latency.record(7);
        let mut b = RunStats::default();
        b.commit_latency.record(200_000);
        a.merge(&b);
        assert_eq!(a.commit_latency.count(), 2);
        assert_eq!(a.abort_latency.count(), 1);
        assert!(a.commit_latency.p999() <= a.commit_latency.max());
    }
}
