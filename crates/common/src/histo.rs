//! Fixed-bucket log-linear latency histogram (HDR-style).
//!
//! [`LatencyHisto`] records per-attempt transaction latencies on the worker
//! hot path and answers p50/p90/p99/p999 queries after the run. Like
//! [`crate::stats::TimeBreakdown`] it is unit-free: the real engine records
//! nanoseconds, the simulator records cycles (1 cycle ≈ 1 ns at the modeled
//! 1 GHz clock), and per-worker histograms merge with `+=`.
//!
//! Bucketing follows the HDR histogram scheme: each power-of-two octave is
//! split into `2^SUB_BITS` linear sub-buckets, so a bucket's width is at
//! most `1/2^SUB_BITS` of its lower bound. With `SUB_BITS = 3` that bounds
//! the relative quantile error at 12.5% across the full `u64` range using a
//! fixed 496-slot table — no allocation, no dynamic resizing, and `record`
//! is a handful of bit operations.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Linear sub-buckets per power-of-two octave, as a bit count.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (8): bounds the relative error at 1/8 = 12.5%.
const SUB: usize = 1 << SUB_BITS;
/// Total buckets covering `0..=u64::MAX`: values below `SUB` get exact
/// singleton buckets, every octave above contributes `SUB` more.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Bucket index for a recorded value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let mantissa = (v >> (exp - SUB_BITS)) as usize & (SUB - 1);
    (((exp - SUB_BITS + 1) as usize) << SUB_BITS) | mantissa
}

/// Smallest value mapping to bucket `idx` (the quantile representative).
#[inline]
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let exp = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
    let mantissa = (idx & (SUB - 1)) as u64;
    (1u64 << exp) | (mantissa << (exp - SUB_BITS))
}

/// A log-linear latency histogram with ≤12.5% relative quantile error.
///
/// Quantiles return the *lower bound* of the bucket holding the requested
/// rank, so reported percentiles never exceed any sample in that bucket and
/// `p50 ≤ p90 ≤ p99 ≤ p999 ≤ max` holds by construction. The maximum is
/// tracked exactly.
#[derive(Clone)]
pub struct LatencyHisto {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
    saturated: bool,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            saturated: false,
        }
    }
}

impl LatencyHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        match self.sum.checked_add(v) {
            Some(s) => self.sum = s,
            None => {
                self.sum = u64::MAX;
                self.saturated = true;
            }
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded samples (saturating). The Prometheus exporter
    /// emits this as the histogram's `_sum` series, unless
    /// [`sum_saturated`](Self::sum_saturated) is set.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True once the `u64` sum has overflowed and pinned at `u64::MAX`.
    /// Buckets, count, and max stay exact; only `sum` (and therefore
    /// `mean`) is unreliable. Exporters must mark or omit a saturated
    /// `_sum` instead of emitting the clamped value.
    pub fn sum_saturated(&self) -> bool {
        self.saturated
    }

    /// Mean sample value. 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), as the lower bound of the bucket
    /// containing the sample of rank `ceil(q · count)`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(idx);
            }
        }
        // Unreachable while counts are consistent; max is a safe answer.
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending — the compact
    /// form the bench binaries export.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(idx, &n)| (bucket_lower_bound(idx), n))
    }

    /// Non-empty buckets as `(inclusive_upper_bound, cumulative_count)`,
    /// ascending — exactly the Prometheus `_bucket{le="..."}` series (every
    /// sample in a bucket is ≤ that bucket's upper bound, and the counts
    /// accumulate).
    pub fn iter_cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(move |(idx, &n)| {
                cum += n;
                let upper = if idx + 1 < NUM_BUCKETS {
                    bucket_lower_bound(idx + 1) - 1
                } else {
                    u64::MAX
                };
                (upper, cum)
            })
    }
}

impl AddAssign<&LatencyHisto> for LatencyHisto {
    fn add_assign(&mut self, rhs: &LatencyHisto) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *a += b;
        }
        self.count += rhs.count;
        match self.sum.checked_add(rhs.sum) {
            Some(s) => self.sum = s,
            None => {
                self.sum = u64::MAX;
                self.saturated = true;
            }
        }
        self.saturated |= rhs.saturated;
        self.max = self.max.max(rhs.max);
    }
}

impl AddAssign for LatencyHisto {
    fn add_assign(&mut self, rhs: LatencyHisto) {
        *self += &rhs;
    }
}

impl Add for LatencyHisto {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self += &rhs;
        self
    }
}

impl fmt::Debug for LatencyHisto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHisto")
            .field("count", &self.count)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .field("max", &self.max)
            .finish()
    }
}

impl PartialEq for LatencyHisto {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.max == other.max
            && self.buckets == other.buckets
    }
}

impl Eq for LatencyHisto {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's lower bound maps back to that bucket, and bounds
        // are strictly increasing.
        let mut prev = None;
        for idx in 0..NUM_BUCKETS {
            let lb = bucket_lower_bound(idx);
            assert_eq!(bucket_of(lb), idx, "lower bound of bucket {idx}");
            if let Some(p) = prev {
                assert!(lb > p, "bounds must be strictly increasing at {idx}");
            }
            prev = Some(lb);
        }
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHisto::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        for v in 0..SUB as u64 {
            let q = (v + 1) as f64 / SUB as f64;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHisto::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn one_sample() {
        let mut h = LatencyHisto::new();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1234);
        assert_eq!(h.mean(), 1234);
        // All quantiles land in the single occupied bucket.
        let lb = bucket_lower_bound(bucket_of(1234));
        assert_eq!(h.p50(), lb);
        assert_eq!(h.p999(), lb);
        assert!(h.p999() <= h.max());
    }

    /// Quantiles vs. a sorted-vector oracle under randomized inputs: the
    /// reported quantile must be within one bucket width (≤12.5% relative
    /// error) of the true order statistic, and never above it.
    #[test]
    fn quantiles_match_sorted_oracle() {
        let mut rng = SplitMix64::new(0xC0FF_EE00);
        for trial in 0..20 {
            let n = 100 + (rng.next_u64() % 5000) as usize;
            let mut h = LatencyHisto::new();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mixed magnitudes: exercise several octaves.
                let shift = 24 + rng.next_u64() % 40;
                let v = rng.next_u64() >> shift;
                h.record(v);
                samples.push(v);
            }
            samples.sort_unstable();
            for &q in &[0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let oracle = samples[rank - 1];
                let got = h.quantile(q);
                // The histogram answers with the lower bound of the
                // oracle's bucket: never above the true value, and within
                // one sub-bucket width of it.
                assert!(
                    got <= oracle,
                    "trial {trial} q={q}: got {got} > oracle {oracle}"
                );
                let width = oracle / SUB as u64 + 1;
                assert!(
                    got + width > oracle,
                    "trial {trial} q={q}: got {got}, oracle {oracle}, width {width}"
                );
            }
            assert_eq!(h.max(), *samples.last().unwrap());
            assert!(h.p50() <= h.p90());
            assert!(h.p90() <= h.p99());
            assert!(h.p99() <= h.p999());
            assert!(h.p999() <= h.max());
        }
    }

    #[test]
    fn merge_is_associative_and_matches_bulk_record() {
        let mut rng = SplitMix64::new(0xDEAD_10CC);
        let mut parts = [
            LatencyHisto::new(),
            LatencyHisto::new(),
            LatencyHisto::new(),
        ];
        let mut all = LatencyHisto::new();
        for i in 0..3000 {
            let v = rng.next_u64() % 1_000_000;
            parts[i % 3].record(v);
            all.record(v);
        }
        // (a + b) + c == a + (b + c) == bulk-recorded.
        let left = (parts[0].clone() + parts[1].clone()) + parts[2].clone();
        let right = parts[0].clone() + (parts[1].clone() + parts[2].clone());
        assert_eq!(left, right);
        assert_eq!(left, all);
        assert_eq!(left.count(), 3000);
    }

    #[test]
    fn sum_saturation_is_flagged_and_sticky() {
        let mut h = LatencyHisto::new();
        h.record(u64::MAX);
        assert!(!h.sum_saturated(), "a single max sample fits exactly");
        assert_eq!(h.sum(), u64::MAX);
        h.record(1);
        assert!(h.sum_saturated(), "overflow must set the flag");
        assert_eq!(h.sum(), u64::MAX, "sum pins at MAX once saturated");
        // Buckets/count/max stay exact past saturation.
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Saturation survives merges in both directions.
        let mut clean = LatencyHisto::new();
        clean.record(7);
        let merged = clean.clone() + h.clone();
        assert!(merged.sum_saturated());
        let merged = h.clone() + clean.clone();
        assert!(merged.sum_saturated());
        // Two large-but-unsaturated parts can saturate only at merge time.
        let mut a = LatencyHisto::new();
        let mut b = LatencyHisto::new();
        a.record(u64::MAX - 1);
        b.record(u64::MAX - 1);
        assert!(!a.sum_saturated() && !b.sum_saturated());
        let merged = a + b;
        assert!(merged.sum_saturated());
        assert_eq!(merged.sum(), u64::MAX);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LatencyHisto::new();
        h.record(42);
        let merged = h.clone() + LatencyHisto::new();
        assert_eq!(merged, h);
    }

    #[test]
    fn iter_cumulative_is_a_valid_le_series() {
        let mut h = LatencyHisto::new();
        let samples = [1u64, 1, 7, 100, 100_000, u64::MAX];
        for v in samples {
            h.record(v);
        }
        let series: Vec<(u64, u64)> = h.iter_cumulative().collect();
        // Monotone in both coordinates, final cumulative = count.
        assert!(series
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(series.last().unwrap().1, h.count());
        // Every upper bound really bounds its bucket's samples: the
        // cumulative count at `le` matches the sorted-oracle rank.
        for &(le, cum) in &series {
            let oracle = samples.iter().filter(|&&v| v <= le).count() as u64;
            assert_eq!(cum, oracle, "le={le}");
        }
    }

    #[test]
    fn iter_nonzero_roundtrips_count() {
        let mut h = LatencyHisto::new();
        for v in [1u64, 1, 7, 100, 100_000, u64::MAX] {
            h.record(v);
        }
        let total: u64 = h.iter_nonzero().map(|(_, n)| n).sum();
        assert_eq!(total, h.count());
        let bounds: Vec<u64> = h.iter_nonzero().map(|(lb, _)| lb).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
