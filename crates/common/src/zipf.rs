//! Zipfian key-choice generator for YCSB, after Gray et al.,
//! *Quickly Generating Billion-Record Synthetic Databases* (SIGMOD '94) —
//! the same construction DBx1000 and the original YCSB use.
//!
//! `theta` (the paper's contention knob) is the Zipf exponent-like skew
//! parameter: `theta = 0` is uniform; `theta = 0.6` routes ~40% of accesses
//! to the hottest 10% of keys; `theta = 0.8` routes ~60% (§3.3).

use crate::rng::Xoshiro256;

/// Zipfian generator over `[0, n)` with skew `theta ∈ [0, 1)`.
///
/// Construction cost is O(n) for the zeta sum (done once; reused across
/// clones), generation cost is O(1) per draw.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow: f64,
}

impl ZipfGen {
    /// Build a generator for `n` items with skew `theta`.
    ///
    /// # Panics
    /// If `n == 0` or `theta` is outside `[0, 1)` (theta = 1 diverges in this
    /// construction; the paper sweeps 0..=0.9).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "ZipfGen needs at least one item");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        let half_pow = 1.0 + 0.5f64.powf(theta);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            half_pow,
        }
    }

    /// The generalized harmonic number `sum_{i=1..n} 1/i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // For paper-scale n (20M) this is a one-time ~100ms cost; callers
        // cache the generator. An Euler–Maclaurin approximation would be
        // faster but the exact sum keeps the distribution tests tight.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next item in `[0, n)`; item 0 is the hottest.
    #[inline]
    pub fn next(&self, rng: &mut Xoshiro256) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.half_pow {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hottest_fraction(theta: f64, hot_frac: f64) -> f64 {
        // Measure what fraction of draws land in the hottest `hot_frac` of
        // a 100k-item table.
        let n = 100_000u64;
        let g = ZipfGen::new(n, theta);
        let mut rng = Xoshiro256::seed_from(99);
        let cutoff = (n as f64 * hot_frac) as u64;
        let draws = 200_000;
        let hits = (0..draws).filter(|_| g.next(&mut rng) < cutoff).count();
        hits as f64 / draws as f64
    }

    #[test]
    fn uniform_when_theta_zero() {
        let f = hottest_fraction(0.0, 0.10);
        assert!((f - 0.10).abs() < 0.01, "theta=0 hottest-10% got {f}");
    }

    #[test]
    fn medium_contention_matches_paper() {
        // §3.3: theta=0.6 ⇒ hotspot of 10% of tuples gets ~40% of accesses.
        let f = hottest_fraction(0.6, 0.10);
        assert!((0.32..=0.48).contains(&f), "theta=0.6 hottest-10% got {f}");
    }

    #[test]
    fn high_contention_matches_paper() {
        // §3.3: theta=0.8 ⇒ hotspot of 10% of tuples gets ~60% of accesses.
        let f = hottest_fraction(0.8, 0.10);
        assert!((0.52..=0.70).contains(&f), "theta=0.8 hottest-10% got {f}");
    }

    #[test]
    fn draws_stay_in_range() {
        for theta in [0.0, 0.3, 0.6, 0.9] {
            let g = ZipfGen::new(1000, theta);
            let mut rng = Xoshiro256::seed_from(3);
            for _ in 0..10_000 {
                assert!(g.next(&mut rng) < 1000);
            }
        }
    }

    #[test]
    fn item_zero_is_hottest() {
        let g = ZipfGen::new(10_000, 0.8);
        let mut rng = Xoshiro256::seed_from(5);
        let mut counts = [0u32; 4];
        for _ in 0..100_000 {
            let v = g.next(&mut rng);
            if v < 4 {
                counts[v as usize] += 1;
            }
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn single_item_table() {
        let g = ZipfGen::new(1, 0.6);
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..100 {
            assert_eq!(g.next(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn rejects_theta_one() {
        let _ = ZipfGen::new(10, 1.0);
    }
}
