//! Thread→core pinning for the benchmark drivers.
//!
//! The paper's model is one worker per core; on real hardware the OS
//! scheduler happily migrates an unpinned worker mid-measurement, folding
//! cache refills and cross-core noise into whatever the figure claims to
//! measure. [`pin_to_core`] binds the *calling thread* to one CPU via a
//! raw `sched_setaffinity` syscall (the workspace vendors no libc), and
//! [`PinPolicy`] names the two placements the harness offers plus the
//! default of leaving the scheduler alone.
//!
//! Everything degrades to a clean no-op: on non-Linux targets, on
//! architectures without the syscall shim, or when the requested core
//! does not exist, [`pin_to_core`] returns `false` and the thread simply
//! runs unpinned — a benchmark must never fail because the host is
//! smaller than the sweep.

/// How benchmark worker threads are placed on cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// Leave placement to the OS scheduler (the default).
    #[default]
    None,
    /// Thread `i` → core `(i * stride) % cores` with
    /// `stride = max(1, cores / threads)`: spreads a small thread count
    /// across the whole core space (and, on multi-socket or
    /// cluster-of-cores parts, across the far caches).
    RoundRobin,
    /// Thread `i` → core `i % cores`: packs threads onto the
    /// lowest-numbered cores so a small sweep shares one cache domain.
    Compact,
    /// Thread `i` → core `i % n`: deliberately packs all threads onto the
    /// first `n` cores, oversubscribing them when `threads > n`. The
    /// contention benches use it to study more workers than cores on a
    /// machine that has plenty.
    CompactTo(usize),
}

impl PinPolicy {
    /// Parse a policy name (config files, CLI flags).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Self::None),
            "round_robin" | "rr" => Some(Self::RoundRobin),
            "compact" => Some(Self::Compact),
            _ => {
                let n = s.strip_prefix("compact:")?.parse().ok()?;
                if n == 0 {
                    return None;
                }
                Some(Self::CompactTo(n))
            }
        }
    }

    /// The policy's stable label (config echo, JSON meta).
    pub fn label(self) -> String {
        match self {
            Self::None => "none".into(),
            Self::RoundRobin => "round_robin".into(),
            Self::Compact => "compact".into(),
            Self::CompactTo(n) => format!("compact:{n}"),
        }
    }

    /// The core this policy assigns to `thread` out of `threads`, given
    /// `cores` available cores; `None` when the policy does not pin.
    /// Pure placement arithmetic, separated from the syscall so tests can
    /// pin (sic) the mapping down without touching affinity masks.
    pub fn core_for(self, thread: u32, threads: u32, cores: usize) -> Option<usize> {
        if cores == 0 {
            return None;
        }
        match self {
            Self::None => None,
            Self::RoundRobin => {
                let stride = (cores / (threads.max(1) as usize)).max(1);
                Some((thread as usize * stride) % cores)
            }
            Self::Compact => Some(thread as usize % cores),
            Self::CompactTo(n) => Some(thread as usize % n.min(cores)),
        }
    }

    /// How many *distinct* cores this policy lands `threads` threads on,
    /// out of `cores` available. The engine's early-yield heuristic keys
    /// off this — `threads > distinct_cores` means the run is
    /// oversubscribed no matter how many cores the machine has.
    /// `PinPolicy::None` counts every core: the scheduler can use them all.
    pub fn distinct_cores(self, threads: u32, cores: usize) -> usize {
        let t = threads.max(1) as usize;
        match self {
            Self::None => cores.max(1),
            Self::RoundRobin | Self::Compact => t.min(cores.max(1)),
            Self::CompactTo(n) => t.min(n.min(cores.max(1)).max(1)),
        }
    }

    /// Pin the calling thread per this policy. Returns `true` only when a
    /// core was assigned *and* the affinity syscall succeeded.
    pub fn apply(self, thread: u32, threads: u32) -> bool {
        match self.core_for(thread, threads, available_cores()) {
            Some(core) => pin_to_core(core),
            None => false,
        }
    }
}

/// The host's available parallelism (1 when unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Bind the calling thread to `core`. Returns `false` — leaving the
/// thread unpinned — when the core does not exist on this host or the
/// platform has no affinity support (see the [module docs](self)).
pub fn pin_to_core(core: usize) -> bool {
    if core >= available_cores() {
        return false;
    }
    // One-bit CPU mask. 1024 bits matches the kernel's default cpumask
    // width; hosts beyond that were range-checked out above anyway.
    let mut mask = [0u64; 16];
    let word = core / 64;
    if word >= mask.len() {
        return false;
    }
    mask[word] = 1u64 << (core % 64);
    sched_setaffinity_raw(&mask)
}

/// `sched_setaffinity(0, size, mask)` for the current thread, x86_64.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_raw(mask: &[u64]) -> bool {
    let ret: i64;
    // SAFETY: syscall 203 (sched_setaffinity) reads `size` bytes from the
    // mask pointer and touches no other memory; rcx/r11 are clobbered by
    // the syscall instruction itself.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0,
            in("rsi") std::mem::size_of_val(mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// `sched_setaffinity(0, size, mask)` for the current thread, aarch64.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_raw(mask: &[u64]) -> bool {
    let ret: i64;
    // SAFETY: syscall 122 (sched_setaffinity) reads `size` bytes from the
    // mask pointer and touches no other memory.
    unsafe {
        std::arch::asm!(
            "svc #0",
            in("x8") 122i64,
            inlateout("x0") 0i64 => ret,
            in("x1") std::mem::size_of_val(mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

/// Portable no-op fallback: report failure, never crash.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_raw(_mask: &[u64]) -> bool {
    false
}

// ---------------------------------------------------------------------------
// NUMA topology
// ---------------------------------------------------------------------------

/// The host's NUMA layout: which node owns each CPU. Detected once from
/// sysfs (`/sys/devices/system/node/node*/cpulist`); anything that fails
/// to parse — missing sysfs, exotic list syntax, non-Linux hosts — softly
/// degrades to a single node owning every CPU, so NUMA-aware code paths
/// collapse to the uniform behavior instead of erroring.
#[derive(Debug)]
pub struct NumaTopology {
    /// `node_of[cpu]` = owning node; CPUs beyond the vector map to node 0.
    node_of: Vec<u16>,
    /// Number of nodes (≥ 1).
    nodes: usize,
}

impl NumaTopology {
    /// Number of NUMA nodes (1 when unknown).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node owning `cpu` (0 when the CPU is unknown to the map).
    pub fn node_of_cpu(&self, cpu: usize) -> usize {
        self.node_of.get(cpu).copied().unwrap_or(0) as usize
    }

    /// Parse one sysfs `cpulist` ("0-15,32-47" / "3" / "" for a memory-only
    /// node) into CPU indices. Returns `None` on syntax it does not know.
    fn parse_cpulist(list: &str) -> Option<Vec<usize>> {
        let mut cpus = Vec::new();
        let trimmed = list.trim();
        if trimmed.is_empty() {
            return Some(cpus);
        }
        for part in trimmed.split(',') {
            match part.split_once('-') {
                Some((lo, hi)) => {
                    let lo: usize = lo.trim().parse().ok()?;
                    let hi: usize = hi.trim().parse().ok()?;
                    if hi < lo || hi - lo > 4096 {
                        return None;
                    }
                    cpus.extend(lo..=hi);
                }
                None => cpus.push(part.trim().parse().ok()?),
            }
        }
        Some(cpus)
    }

    /// Read the topology from sysfs; `None` on any miss (caller falls back
    /// to [`NumaTopology::single_node`]).
    fn from_sysfs() -> Option<Self> {
        let mut node_of = vec![0u16; available_cores()];
        let mut nodes = 0usize;
        for node in 0..=node_of.len().max(1) {
            let path = format!("/sys/devices/system/node/node{node}/cpulist");
            let Ok(list) = std::fs::read_to_string(&path) else {
                break;
            };
            for cpu in Self::parse_cpulist(&list)? {
                if cpu >= node_of.len() {
                    node_of.resize(cpu + 1, 0);
                }
                node_of[cpu] = node as u16;
            }
            nodes = node + 1;
        }
        (nodes >= 1).then_some(Self {
            node_of,
            nodes: nodes.max(1),
        })
    }

    /// The degenerate one-node topology every fallback lands on.
    fn single_node() -> Self {
        Self {
            node_of: Vec::new(),
            nodes: 1,
        }
    }
}

/// The detected host topology (cached; see [`NumaTopology`]).
pub fn numa_topology() -> &'static NumaTopology {
    static TOPOLOGY: std::sync::OnceLock<NumaTopology> = std::sync::OnceLock::new();
    TOPOLOGY.get_or_init(|| NumaTopology::from_sysfs().unwrap_or_else(NumaTopology::single_node))
}

/// The CPU the calling thread is executing on right now, via the `getcpu`
/// syscall; `None` where the syscall shim does not exist.
pub fn current_cpu() -> Option<usize> {
    getcpu_raw()
}

/// The NUMA node the calling thread is executing on right now (node 0 when
/// the CPU cannot be determined — matching the one-node fallback).
pub fn current_node() -> usize {
    current_cpu().map_or(0, |cpu| numa_topology().node_of_cpu(cpu))
}

/// `getcpu(&cpu, NULL, NULL)` for the current thread, x86_64.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn getcpu_raw() -> Option<usize> {
    let mut cpu: u32 = 0;
    let ret: i64;
    // SAFETY: syscall 309 (getcpu) writes 4 bytes through the first
    // pointer; the node and cache pointers are allowed to be null.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 309i64 => ret,
            in("rdi") &mut cpu,
            in("rsi") 0,
            in("rdx") 0,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    (ret == 0).then_some(cpu as usize)
}

/// `getcpu(&cpu, NULL, NULL)` for the current thread, aarch64.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn getcpu_raw() -> Option<usize> {
    let mut cpu: u32 = 0;
    let ret: i64;
    // SAFETY: syscall 168 (getcpu) writes 4 bytes through the first
    // pointer; the node and cache pointers are allowed to be null.
    unsafe {
        std::arch::asm!(
            "svc #0",
            in("x8") 168i64,
            inlateout("x0") &mut cpu as *mut u32 as i64 => ret,
            in("x1") 0i64,
            in("x2") 0i64,
            options(nostack),
        );
    }
    (ret == 0).then_some(cpu as usize)
}

/// Portable fallback: the current CPU is unknowable, report so.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn getcpu_raw() -> Option<usize> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_core_falls_back_cleanly() {
        // Requesting a core beyond the machine must not pin and must not
        // panic — the thread just stays unpinned.
        assert!(!pin_to_core(available_cores()));
        assert!(!pin_to_core(usize::MAX));
    }

    #[test]
    fn none_policy_never_pins() {
        assert_eq!(PinPolicy::None.core_for(0, 8, 64), None);
        assert!(!PinPolicy::None.apply(0, 8));
    }

    #[test]
    fn compact_packs_low_cores() {
        for t in 0..8 {
            assert_eq!(PinPolicy::Compact.core_for(t, 8, 64), Some(t as usize));
        }
        // Oversubscription wraps instead of inventing cores.
        assert_eq!(PinPolicy::Compact.core_for(65, 128, 64), Some(1));
    }

    #[test]
    fn round_robin_strides_across_the_core_space() {
        // 4 threads on 64 cores: stride 16 spreads them out.
        let cores = 64;
        let picks: Vec<_> = (0..4)
            .map(|t| PinPolicy::RoundRobin.core_for(t, 4, cores).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 16, 32, 48]);
        // More threads than cores: stride collapses to 1 and wraps.
        assert_eq!(PinPolicy::RoundRobin.core_for(70, 128, 64), Some(6));
    }

    #[test]
    fn parse_round_trips_labels() {
        for p in [
            PinPolicy::None,
            PinPolicy::RoundRobin,
            PinPolicy::Compact,
            PinPolicy::CompactTo(4),
        ] {
            assert_eq!(PinPolicy::parse(&p.label()), Some(p));
        }
        assert_eq!(PinPolicy::parse("rr"), Some(PinPolicy::RoundRobin));
        assert_eq!(PinPolicy::parse("compact:0"), None);
        assert_eq!(PinPolicy::parse("bogus"), None);
    }

    #[test]
    fn compact_to_oversubscribes_deliberately() {
        // 8 threads forced onto 2 cores: wraps over the pair.
        for t in 0..8u32 {
            assert_eq!(
                PinPolicy::CompactTo(2).core_for(t, 8, 64),
                Some(t as usize % 2)
            );
        }
        // Never assigns beyond the machine.
        assert_eq!(PinPolicy::CompactTo(128).core_for(65, 128, 64), Some(1));
    }

    #[test]
    fn distinct_cores_sees_through_the_policy() {
        // Unpinned: the scheduler has the whole machine.
        assert_eq!(PinPolicy::None.distinct_cores(8, 64), 64);
        // Compact/RoundRobin: one core per thread until the machine runs out.
        assert_eq!(PinPolicy::Compact.distinct_cores(8, 64), 8);
        assert_eq!(PinPolicy::Compact.distinct_cores(128, 64), 64);
        assert_eq!(PinPolicy::RoundRobin.distinct_cores(4, 64), 4);
        // CompactTo: capped by the requested core budget — 8 threads on 2
        // cores is oversubscription the park table must be able to see.
        assert_eq!(PinPolicy::CompactTo(2).distinct_cores(8, 64), 2);
        assert_eq!(PinPolicy::CompactTo(16).distinct_cores(8, 64), 8);
    }

    #[test]
    fn cpulist_parses_sysfs_syntax() {
        assert_eq!(
            NumaTopology::parse_cpulist("0-3,8-11\n"),
            Some(vec![0, 1, 2, 3, 8, 9, 10, 11])
        );
        assert_eq!(NumaTopology::parse_cpulist("5"), Some(vec![5]));
        assert_eq!(NumaTopology::parse_cpulist(""), Some(vec![]));
        assert_eq!(NumaTopology::parse_cpulist("3-1"), None);
        assert_eq!(NumaTopology::parse_cpulist("x-y"), None);
    }

    #[test]
    fn topology_soft_fails_to_one_node() {
        // Whatever the host looks like, the cached topology must exist,
        // report ≥ 1 node, and map every CPU somewhere valid.
        let topo = numa_topology();
        assert!(topo.nodes() >= 1);
        for cpu in 0..available_cores() {
            assert!(topo.node_of_cpu(cpu) < topo.nodes());
        }
        // Unknown CPUs map to node 0, never panic.
        assert_eq!(NumaTopology::single_node().node_of_cpu(9999), 0);
    }

    #[test]
    fn current_node_is_in_range() {
        // current_cpu is None off Linux; current_node must still answer.
        let node = current_node();
        assert!(node < numa_topology().nodes());
        if let Some(cpu) = current_cpu() {
            assert_eq!(numa_topology().node_of_cpu(cpu), node);
        }
    }

    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 always exists; on supported platforms the syscall must
        // succeed, elsewhere the fallback must report false.
        let ok = pin_to_core(0);
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(ok, "sched_setaffinity(0) failed on a supported target");
        } else {
            assert!(!ok);
        }
    }
}
