//! Thread→core pinning for the benchmark drivers.
//!
//! The paper's model is one worker per core; on real hardware the OS
//! scheduler happily migrates an unpinned worker mid-measurement, folding
//! cache refills and cross-core noise into whatever the figure claims to
//! measure. [`pin_to_core`] binds the *calling thread* to one CPU via a
//! raw `sched_setaffinity` syscall (the workspace vendors no libc), and
//! [`PinPolicy`] names the two placements the harness offers plus the
//! default of leaving the scheduler alone.
//!
//! Everything degrades to a clean no-op: on non-Linux targets, on
//! architectures without the syscall shim, or when the requested core
//! does not exist, [`pin_to_core`] returns `false` and the thread simply
//! runs unpinned — a benchmark must never fail because the host is
//! smaller than the sweep.

/// How benchmark worker threads are placed on cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// Leave placement to the OS scheduler (the default).
    #[default]
    None,
    /// Thread `i` → core `(i * stride) % cores` with
    /// `stride = max(1, cores / threads)`: spreads a small thread count
    /// across the whole core space (and, on multi-socket or
    /// cluster-of-cores parts, across the far caches).
    RoundRobin,
    /// Thread `i` → core `i % cores`: packs threads onto the
    /// lowest-numbered cores so a small sweep shares one cache domain.
    Compact,
}

impl PinPolicy {
    /// Parse a policy name (config files, CLI flags).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Self::None),
            "round_robin" | "rr" => Some(Self::RoundRobin),
            "compact" => Some(Self::Compact),
            _ => None,
        }
    }

    /// The policy's stable label (config echo, JSON meta).
    pub fn label(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::RoundRobin => "round_robin",
            Self::Compact => "compact",
        }
    }

    /// The core this policy assigns to `thread` out of `threads`, given
    /// `cores` available cores; `None` when the policy does not pin.
    /// Pure placement arithmetic, separated from the syscall so tests can
    /// pin (sic) the mapping down without touching affinity masks.
    pub fn core_for(self, thread: u32, threads: u32, cores: usize) -> Option<usize> {
        if cores == 0 {
            return None;
        }
        match self {
            Self::None => None,
            Self::RoundRobin => {
                let stride = (cores / (threads.max(1) as usize)).max(1);
                Some((thread as usize * stride) % cores)
            }
            Self::Compact => Some(thread as usize % cores),
        }
    }

    /// Pin the calling thread per this policy. Returns `true` only when a
    /// core was assigned *and* the affinity syscall succeeded.
    pub fn apply(self, thread: u32, threads: u32) -> bool {
        match self.core_for(thread, threads, available_cores()) {
            Some(core) => pin_to_core(core),
            None => false,
        }
    }
}

/// The host's available parallelism (1 when unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Bind the calling thread to `core`. Returns `false` — leaving the
/// thread unpinned — when the core does not exist on this host or the
/// platform has no affinity support (see the [module docs](self)).
pub fn pin_to_core(core: usize) -> bool {
    if core >= available_cores() {
        return false;
    }
    // One-bit CPU mask. 1024 bits matches the kernel's default cpumask
    // width; hosts beyond that were range-checked out above anyway.
    let mut mask = [0u64; 16];
    let word = core / 64;
    if word >= mask.len() {
        return false;
    }
    mask[word] = 1u64 << (core % 64);
    sched_setaffinity_raw(&mask)
}

/// `sched_setaffinity(0, size, mask)` for the current thread, x86_64.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_raw(mask: &[u64]) -> bool {
    let ret: i64;
    // SAFETY: syscall 203 (sched_setaffinity) reads `size` bytes from the
    // mask pointer and touches no other memory; rcx/r11 are clobbered by
    // the syscall instruction itself.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0,
            in("rsi") std::mem::size_of_val(mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// `sched_setaffinity(0, size, mask)` for the current thread, aarch64.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_raw(mask: &[u64]) -> bool {
    let ret: i64;
    // SAFETY: syscall 122 (sched_setaffinity) reads `size` bytes from the
    // mask pointer and touches no other memory.
    unsafe {
        std::arch::asm!(
            "svc #0",
            in("x8") 122i64,
            inlateout("x0") 0i64 => ret,
            in("x1") std::mem::size_of_val(mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

/// Portable no-op fallback: report failure, never crash.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_raw(_mask: &[u64]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_core_falls_back_cleanly() {
        // Requesting a core beyond the machine must not pin and must not
        // panic — the thread just stays unpinned.
        assert!(!pin_to_core(available_cores()));
        assert!(!pin_to_core(usize::MAX));
    }

    #[test]
    fn none_policy_never_pins() {
        assert_eq!(PinPolicy::None.core_for(0, 8, 64), None);
        assert!(!PinPolicy::None.apply(0, 8));
    }

    #[test]
    fn compact_packs_low_cores() {
        for t in 0..8 {
            assert_eq!(PinPolicy::Compact.core_for(t, 8, 64), Some(t as usize));
        }
        // Oversubscription wraps instead of inventing cores.
        assert_eq!(PinPolicy::Compact.core_for(65, 128, 64), Some(1));
    }

    #[test]
    fn round_robin_strides_across_the_core_space() {
        // 4 threads on 64 cores: stride 16 spreads them out.
        let cores = 64;
        let picks: Vec<_> = (0..4)
            .map(|t| PinPolicy::RoundRobin.core_for(t, 4, cores).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 16, 32, 48]);
        // More threads than cores: stride collapses to 1 and wraps.
        assert_eq!(PinPolicy::RoundRobin.core_for(70, 128, 64), Some(6));
    }

    #[test]
    fn parse_round_trips_labels() {
        for p in [PinPolicy::None, PinPolicy::RoundRobin, PinPolicy::Compact] {
            assert_eq!(PinPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(PinPolicy::parse("rr"), Some(PinPolicy::RoundRobin));
        assert_eq!(PinPolicy::parse("bogus"), None);
    }

    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 always exists; on supported platforms the syscall must
        // succeed, elsewhere the fallback must report false.
        let ok = pin_to_core(0);
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(ok, "sched_setaffinity(0) failed on a supported target");
        } else {
            assert!(!ok);
        }
    }
}
