//! Cache-line padding newtypes for contended words.
//!
//! CCBench's central finding is that concurrency-control conclusions move
//! when the *environment* moves: whether a hot word shares its cache line
//! with a neighbor can swing a protocol's throughput more than the
//! protocol choice itself. This module gives the repo exactly one place
//! that decision is made. [`Padded<T>`] aligns `T` to its own (pair of)
//! cache line(s); [`Unpadded<T>`] is a `repr(transparent)` control with
//! the identical API, so any data structure — and in particular the
//! padding-audit microbenchmarks in `dispatch_micro` — can be written
//! once, generic over [`PadWrap`], and compiled against both layouts.
//!
//! 128-byte alignment (two lines on x86_64, one on Apple/ARM big cores)
//! defeats the adjacent-line prefetcher that otherwise drags a neighbor
//! line into the coherence storm; this matches crossbeam's choice.
//!
//! What gets padded (and what deliberately does not):
//!
//! * **per-worker / global slots** — epoch slots, waits-for heads,
//!   park-table flags, the shared-timestamp allocator word, partition
//!   controllers: one instance per worker (or one total), so the memory
//!   cost is bounded and every one of them is padded;
//! * **per-row words** — the 2PL/OCC lockword in `RowMeta` is *not*
//!   padded: at 10M rows, padding would multiply table metadata by ~8×
//!   and evict the rows the lock protects. The padding audit measures
//!   what that decision costs on a synthetic hot-row array instead.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Uniform wrapper surface over [`Padded`] and [`Unpadded`], so a
/// benchmark (or a data structure under audit) can be generic over the
/// layout decision.
pub trait PadWrap<T>: Default + Sync + Send
where
    T: Default + Sync + Send,
{
    /// Wrap a value.
    fn wrap(value: T) -> Self;
    /// Borrow the wrapped value.
    fn get(&self) -> &T;
    /// The wrapper's label in audit output.
    const LABEL: &'static str;
}

/// `T`, alone on its own cache line(s).
///
/// The repo-wide padding newtype (see the [module docs](self)): every
/// contended per-worker or global word in `abyss-core` is held in one of
/// these.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct Padded<T> {
    value: T,
}

impl<T> Padded<T> {
    /// Wrap `value` on its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for Padded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for Padded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Padded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Padded").field(&self.value).finish()
    }
}

impl<T> From<T> for Padded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: Default + Sync + Send> PadWrap<T> for Padded<T> {
    fn wrap(value: T) -> Self {
        Self::new(value)
    }
    fn get(&self) -> &T {
        &self.value
    }
    const LABEL: &'static str = "padded";
}

/// The compile-time control: `T` with no alignment change at all.
///
/// Layout-identical to a bare `T` (`repr(transparent)`), so an array of
/// `Unpadded<AtomicU64>` packs 16 words per 128-byte line — the exact
/// false-sharing regime the audit quantifies.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Unpadded<T> {
    value: T,
}

impl<T> Unpadded<T> {
    /// Wrap `value` with no layout change.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for Unpadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for Unpadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Unpadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Unpadded").field(&self.value).finish()
    }
}

impl<T> From<T> for Unpadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: Default + Sync + Send> PadWrap<T> for Unpadded<T> {
    fn wrap(value: T) -> Self {
        Self::new(value)
    }
    fn get(&self) -> &T {
        &self.value
    }
    const LABEL: &'static str = "unpadded";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_occupies_full_lines() {
        assert_eq!(std::mem::align_of::<Padded<AtomicU64>>(), 128);
        assert_eq!(std::mem::size_of::<Padded<AtomicU64>>(), 128);
        // An array of padded words puts every element on its own line.
        assert_eq!(std::mem::size_of::<[Padded<AtomicU64>; 4]>(), 512);
    }

    #[test]
    fn unpadded_is_transparent() {
        assert_eq!(
            std::mem::size_of::<Unpadded<AtomicU64>>(),
            std::mem::size_of::<AtomicU64>()
        );
        assert_eq!(
            std::mem::align_of::<Unpadded<AtomicU64>>(),
            std::mem::align_of::<AtomicU64>()
        );
    }

    #[test]
    fn wrappers_share_one_api() {
        fn bump<W: PadWrap<AtomicU64>>() -> u64 {
            let w = W::wrap(AtomicU64::new(41));
            w.get().fetch_add(1, Ordering::Relaxed);
            w.get().load(Ordering::Relaxed)
        }
        assert_eq!(bump::<Padded<AtomicU64>>(), 42);
        assert_eq!(bump::<Unpadded<AtomicU64>>(), 42);
        assert_eq!(Padded::<AtomicU64>::LABEL, "padded");
        assert_eq!(Unpadded::<AtomicU64>::LABEL, "unpadded");
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = Padded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
        let mut u = Unpadded::new(7u64);
        *u += 1;
        assert_eq!(u.into_inner(), 8);
    }
}
