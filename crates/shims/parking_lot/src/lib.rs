//! Offline drop-in shim for the subset of `parking_lot` this workspace
//! uses: [`Mutex`], [`MutexGuard`] (including [`MutexGuard::map`]) and
//! [`MappedMutexGuard`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API surface it needs instead of depending on the real
//! crate. The implementation is a test-and-test-and-set spin lock with
//! exponential politeness (spin hints, then `yield_now`), which matches the
//! short per-tuple / per-bucket critical sections the engine takes. No
//! poisoning, like the real `parking_lot`.

#![forbid(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// The raw test-and-test-and-set lock under [`Mutex`].
#[derive(Debug, Default)]
struct RawSpin {
    locked: AtomicBool,
}

impl RawSpin {
    const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    fn lock(&self) {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: only attempt the RMW when the lock
            // looks free, keeping the line shared while spinning.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// A mutual-exclusion primitive (spin-lock based, no poisoning).
pub struct Mutex<T: ?Sized> {
    raw: RawSpin,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            raw: RawSpin::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, spinning until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.raw.lock();
        MutexGuard {
            raw: &self.raw,
            data: self.data.get(),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.raw.try_lock() {
            Some(MutexGuard {
                raw: &self.raw,
                data: self.data.get(),
                _not_send: PhantomData,
            })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    raw: &'a RawSpin,
    data: *mut T,
    /// Guards must stay on the locking thread.
    _not_send: PhantomData<*mut ()>,
}

unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Map the guard to a component of the protected data, transferring the
    /// lock to the returned [`MappedMutexGuard`].
    pub fn map<U: ?Sized, F>(mut this: Self, f: F) -> MappedMutexGuard<'a, U>
    where
        F: FnOnce(&mut T) -> &mut U,
    {
        let mapped: *mut U = f(&mut this);
        let raw = this.raw;
        std::mem::forget(this);
        MappedMutexGuard {
            raw,
            data: mapped,
            _not_send: PhantomData,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, granting exclusive access.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.data }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.raw.unlock();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A guard obtained through [`MutexGuard::map`].
pub struct MappedMutexGuard<'a, T: ?Sized> {
    raw: &'a RawSpin,
    data: *mut T,
    _not_send: PhantomData<*mut ()>,
}

unsafe impl<T: ?Sized + Sync> Sync for MappedMutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MappedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, granting exclusive access.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for MappedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.data }
    }
}

impl<T: ?Sized> Drop for MappedMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.raw.unlock();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MappedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn map_transfers_the_lock() {
        let m = Mutex::new((1u64, 2u64));
        {
            let mut mapped = MutexGuard::map(m.lock(), |t| &mut t.1);
            *mapped += 10;
            assert!(m.try_lock().is_none(), "mapped guard must keep the lock");
        }
        assert_eq!(m.lock().1, 12);
    }

    #[test]
    fn contended_counter_is_exact() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }
}
