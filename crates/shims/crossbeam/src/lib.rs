//! Offline drop-in shim for the subset of `crossbeam` this workspace uses:
//! [`thread::scope`] with crossbeam's closure signature (`spawn` passes the
//! scope back into the closure). The build environment has no access to
//! crates.io, so the workspace vendors the tiny API surface it needs,
//! implemented on std's scoped threads.

pub use crossbeam_utils as utils;

/// Scoped threads with crossbeam's API shape.
pub mod thread {
    /// Result type of [`scope`] and of joining a [`ScopedJoinHandle`].
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handed to the [`scope`] closure; spawn borrows through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns. Unlike crossbeam (which
    /// collects child panics into `Err`), a child panic propagates here —
    /// every caller in this workspace unwraps the result anyway.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicU64::new(0);
        super::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let counter = AtomicU64::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
