//! Offline drop-in shim for the subset of `crossbeam-utils` this workspace
//! uses: [`CachePadded`]. The build environment has no access to crates.io,
//! so the workspace vendors the tiny API surface it needs.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that neighbouring values never
/// share a cache line (two 64-byte lines, covering adjacent-line
/// prefetchers).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
