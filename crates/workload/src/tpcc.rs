//! TPC-C, restricted to the Payment and NewOrder transactions — together
//! 88% of the standard mix and the two the paper models (§3.3, §5.6).
//!
//! This is a "good-faith" implementation in the paper's sense: the full
//! nine-table schema is present with spec-accurate row widths, the two
//! transactions touch the same tables in the same order with the spec's
//! remote-warehouse probabilities, there is no thinking time, and ~1% of
//! NewOrder transactions abort through program logic (the invalid-item
//! rule). Simplifications, documented here and in `DESIGN.md`:
//!
//! * customer lookups are always by id (the spec's 60% by-last-name path
//!   requires a secondary index; DBx1000 does the same simplification);
//! * item ids are drawn uniformly instead of NURand;
//! * decimal columns are stored as integer cents in `u64` columns.
//!
//! # Key encoding
//!
//! All tables are keyed by a single `u64`:
//!
//! ```text
//! WAREHOUSE   w
//! DISTRICT    w * 10 + d                                  (d in 0..10)
//! CUSTOMER    district_key * 3000 + c                     (c in 0..3000)
//! ITEM        i                                           (i in 0..100_000)
//! STOCK       w * 100_000 + i
//! ORDER       district_key << 32 | o_id
//! NEW_ORDER   district_key << 32 | o_id
//! ORDER_LINE  (district_key << 32 | o_id) << 4 | ol       (ol in 0..15)
//! HISTORY     worker << 40 | seq                          (synthetic)
//! ```
//!
//! The warehouse id occupies the key's upper bits for ORDER-family tables
//! and the multiplicative prefix elsewhere, so
//! [`abyss_storage::PartitionMap`] can partition every table by warehouse —
//! the paper's H-STORE partitioning.

use abyss_common::rng::Xoshiro256;
use abyss_common::{AccessOp, AccessSpec, Key, KeySpec, PartId, TxnTemplate};
use abyss_storage::{Catalog, ColumnDef, Schema};

/// Districts per warehouse (spec).
pub const DISTRICTS_PER_WH: u64 = 10;
/// Customers per district (spec).
pub const CUSTOMERS_PER_DISTRICT: u64 = 3000;
/// Items in the catalog (spec).
pub const ITEMS: u64 = 100_000;
/// First order id assigned to new orders (3000 exist per district at load).
pub const FIRST_NEW_ORDER_ID: u64 = 3000;

/// Transaction tags reported by the harness.
pub const TAG_PAYMENT: u8 = 0;
/// NewOrder tag.
pub const TAG_NEW_ORDER: u8 = 1;
/// OrderStatus tag (the range-read transaction).
pub const TAG_ORDER_STATUS: u8 = 2;

/// The nine TPC-C tables, with catalog ids matching the enum discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum TpccTable {
    /// WAREHOUSE — one row per warehouse.
    Warehouse = 0,
    /// DISTRICT — 10 rows per warehouse.
    District = 1,
    /// CUSTOMER — 3000 rows per district.
    Customer = 2,
    /// HISTORY — append-only payment history.
    History = 3,
    /// NEW-ORDER — pending orders.
    NewOrder = 4,
    /// ORDER — one row per order.
    Order = 5,
    /// ORDER-LINE — 5–15 rows per order.
    OrderLine = 6,
    /// ITEM — global read-only catalog (100k rows).
    Item = 7,
    /// STOCK — 100k rows per warehouse.
    Stock = 8,
}

impl TpccTable {
    /// Catalog table id.
    pub fn id(self) -> u32 {
        self as u32
    }
}

/// Composite-key helpers (see module docs for the encoding).
pub mod keys {
    use super::*;

    /// DISTRICT primary key.
    pub fn district(w: u64, d: u64) -> Key {
        debug_assert!(d < DISTRICTS_PER_WH);
        w * DISTRICTS_PER_WH + d
    }

    /// CUSTOMER primary key.
    pub fn customer(w: u64, d: u64, c: u64) -> Key {
        debug_assert!(c < CUSTOMERS_PER_DISTRICT);
        district(w, d) * CUSTOMERS_PER_DISTRICT + c
    }

    /// STOCK primary key.
    pub fn stock(w: u64, i: u64) -> Key {
        debug_assert!(i < ITEMS);
        w * ITEMS + i
    }

    /// ORDER / NEW-ORDER primary key.
    pub fn order(w: u64, d: u64, o_id: u64) -> Key {
        debug_assert!(o_id < (1 << 32));
        (district(w, d) << 32) | o_id
    }

    /// ORDER-LINE primary key.
    pub fn order_line(w: u64, d: u64, o_id: u64, ol: u64) -> Key {
        debug_assert!(ol < 16);
        (order(w, d, o_id) << 4) | ol
    }

    /// Synthetic HISTORY primary key (per-worker unique).
    pub fn history(worker: u64, seq: u64) -> Key {
        (worker << 40) | seq
    }

    /// Warehouse of a DISTRICT key.
    pub fn district_wh(k: Key) -> u64 {
        k / DISTRICTS_PER_WH
    }

    /// Warehouse of an ORDER / NEW-ORDER key.
    pub fn order_wh(k: Key) -> u64 {
        district_wh(k >> 32)
    }

    /// Warehouse of an ORDER-LINE key.
    pub fn order_line_wh(k: Key) -> u64 {
        order_wh(k >> 4)
    }
}

/// Tunable TPC-C parameters. Defaults follow the paper's §5.6 setup.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (the paper runs 4 and 1024).
    pub warehouses: u32,
    /// Fraction of transactions that are OrderStatus (range reads over
    /// NEW-ORDER and ORDER-LINE). 0 reproduces the paper's Payment +
    /// NewOrder mix exactly; the remainder is split by `payment_pct`.
    pub order_status_pct: f64,
    /// Fraction of *non-OrderStatus* transactions that are Payment
    /// (paper: 50/50 with NewOrder).
    pub payment_pct: f64,
    /// Payment: probability the paying customer belongs to a remote
    /// warehouse (spec & paper: ~15%).
    pub remote_payment_pct: f64,
    /// NewOrder: per-item probability the supplying warehouse is remote
    /// (spec: 1%, giving ~10% of transactions at least one remote item).
    pub remote_item_pct: f64,
    /// NewOrder: probability of a program-logic abort (spec: 1%).
    pub user_abort_pct: f64,
    /// Number of worker threads / generators (home warehouses are assigned
    /// round-robin: worker i is home to warehouse `i % warehouses`).
    pub workers: u32,
    /// Extra capacity factor for insert-heavy tables, as a multiple of the
    /// initial row count (real-engine loads need headroom for inserts).
    pub insert_headroom: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 4,
            order_status_pct: 0.0,
            payment_pct: 0.5,
            remote_payment_pct: 0.15,
            remote_item_pct: 0.01,
            user_abort_pct: 0.01,
            workers: 4,
            insert_headroom: 2.0,
        }
    }
}

impl TpccConfig {
    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.warehouses == 0 {
            return Err("warehouses must be positive".into());
        }
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        for (name, v) in [
            ("order_status_pct", self.order_status_pct),
            ("payment_pct", self.payment_pct),
            ("remote_payment_pct", self.remote_payment_pct),
            ("remote_item_pct", self.remote_item_pct),
            ("user_abort_pct", self.user_abort_pct),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} out of range: {v}"));
            }
        }
        Ok(())
    }

    /// Home warehouse of a worker.
    pub fn home_warehouse(&self, worker: u32) -> u64 {
        u64::from(worker % self.warehouses)
    }
}

/// Build the nine-table TPC-C catalog with spec-accurate row widths.
///
/// Schemas: column 0 is always the `u64` primary key; column 1 is the `u64`
/// "hot" numeric column the transactions read-modify-write (W_YTD, D_YTD /
/// D_NEXT_O_ID, C_BALANCE, S_QUANTITY); the remainder is payload padding to
/// the spec's approximate row width.
pub fn catalog(cfg: &TpccConfig) -> Catalog {
    let w = u64::from(cfg.warehouses);
    let head = cfg.insert_headroom.max(1.0);
    let orders_cap = ((w * DISTRICTS_PER_WH * CUSTOMERS_PER_DISTRICT) as f64 * head) as u64;
    let mut c = Catalog::new();

    let mk = |payload: usize| {
        Schema::new(vec![
            ColumnDef::u64("key"),
            ColumnDef::u64("hot"),
            ColumnDef::new("payload", payload),
        ])
    };

    // Spec-ish row widths (bytes): warehouse 89, district 95, customer 655,
    // history 46, new-order 8, order 24, order-line 54, item 82, stock 306.
    // The ORDER-family tables carry ordered indexes: their composite keys
    // sort by (warehouse, district, order id[, line]), which is exactly the
    // order the OrderStatus/Delivery range reads need.
    c.add_table("warehouse", mk(73), w);
    c.add_table("district", mk(79), w * DISTRICTS_PER_WH);
    c.add_table(
        "customer",
        mk(639),
        w * DISTRICTS_PER_WH * CUSTOMERS_PER_DISTRICT,
    );
    c.add_table("history", mk(30), orders_cap);
    c.add_ordered_table("new_order", mk(8), orders_cap);
    c.add_ordered_table("order", mk(8), orders_cap);
    c.add_ordered_table("order_line", mk(38), orders_cap * 15);
    c.add_table("item", mk(66), ITEMS);
    c.add_table("stock", mk(290), w * ITEMS);
    c
}

/// Per-worker TPC-C transaction generator.
#[derive(Debug, Clone)]
pub struct TpccGen {
    cfg: TpccConfig,
    worker: u32,
    home_wh: u64,
    rng: Xoshiro256,
    history_seq: u64,
}

impl TpccGen {
    /// Create the generator for `worker`.
    pub fn new(cfg: TpccConfig, worker: u32, seed: u64) -> Self {
        cfg.validate().expect("invalid TPC-C config");
        let home_wh = cfg.home_warehouse(worker);
        Self {
            cfg,
            worker,
            home_wh,
            rng: Xoshiro256::seed_from(seed),
            history_seq: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    /// A warehouse other than `home` (uniform), or `home` when only one
    /// warehouse exists.
    fn remote_warehouse(&mut self) -> u64 {
        let n = u64::from(self.cfg.warehouses);
        if n == 1 {
            return self.home_wh;
        }
        loop {
            let w = self.rng.next_below(n);
            if w != self.home_wh {
                return w;
            }
        }
    }

    /// Generate the next transaction per the configured mix.
    pub fn next_txn(&mut self) -> TxnTemplate {
        if self.cfg.order_status_pct > 0.0 && self.rng.chance(self.cfg.order_status_pct) {
            self.order_status()
        } else if self.rng.chance(self.cfg.payment_pct) {
            self.payment()
        } else {
            self.new_order()
        }
    }

    /// The OrderStatus-style range-read transaction: read the customer,
    /// scan the district's NEW-ORDER window for pending orders (the
    /// Delivery-style oldest-first probe), and scan one recent order's
    /// ORDER-LINE range. Both ranges race NewOrder's inserts into the same
    /// district — the phantom-prone pattern the ordered index exists for.
    pub fn order_status(&mut self) -> TxnTemplate {
        let w = self.home_wh;
        let d = self.rng.next_below(DISTRICTS_PER_WH);
        let c = self.rng.next_below(CUSTOMERS_PER_DISTRICT);
        // A guess at a recently created order id: the district counter
        // starts at FIRST_NEW_ORDER_ID and NewOrder advances it, so probe
        // a small window above the floor (empty ranges are valid scans —
        // they still exercise gap protection).
        let o_guess = FIRST_NEW_ORDER_ID + self.rng.next_below(64);
        order_status_template(w, d, c, o_guess)
    }

    /// The Payment transaction: update W_YTD, D_YTD, the customer's
    /// balance, and append a HISTORY row. ~15% of customers are remote.
    pub fn payment(&mut self) -> TxnTemplate {
        let w = self.home_wh;
        let d = self.rng.next_below(DISTRICTS_PER_WH);
        let (cw, cd) = if self.rng.chance(self.cfg.remote_payment_pct) {
            (
                self.remote_warehouse(),
                self.rng.next_below(DISTRICTS_PER_WH),
            )
        } else {
            (w, d)
        };
        let c = self.rng.next_below(CUSTOMERS_PER_DISTRICT);
        let hkey = keys::history(u64::from(self.worker), self.history_seq);
        self.history_seq += 1;
        payment_template(w, d, cw, cd, c, hkey)
    }

    /// The NewOrder transaction: read WAREHOUSE and CUSTOMER, increment
    /// D_NEXT_O_ID, read each ITEM, update each STOCK (1% remote), insert
    /// ORDER, NEW-ORDER and one ORDER-LINE per item. ~1% user-abort.
    pub fn new_order(&mut self) -> TxnTemplate {
        let w = self.home_wh;
        let d = self.rng.next_below(DISTRICTS_PER_WH);
        let c = self.rng.next_below(CUSTOMERS_PER_DISTRICT);
        let ol_cnt = self.rng.next_range(5, 15);

        let mut items: Vec<(u64, u64)> = Vec::with_capacity(ol_cnt as usize);
        for _ in 0..ol_cnt {
            // Distinct items within one order, as the spec requires.
            let i = loop {
                let i = self.rng.next_below(ITEMS);
                if !items.iter().any(|&(it, _)| it == i) {
                    break i;
                }
            };
            let supply_w = if self.rng.chance(self.cfg.remote_item_pct) {
                self.remote_warehouse()
            } else {
                w
            };
            items.push((i, supply_w));
        }
        let user_abort = self.rng.chance(self.cfg.user_abort_pct);
        new_order_template(w, d, c, &items, user_abort)
    }
}

/// Build the OrderStatus template from already-drawn parameters: customer
/// `c` in district `(w, d)`, probing the ORDER-LINE range of order
/// `o_guess`. Pure — the randomness lives in the caller ([`TpccGen`] or a
/// stored-procedure argument decoder).
pub fn order_status_template(w: u64, d: u64, c: u64, o_guess: u64) -> TxnTemplate {
    let accesses = vec![
        AccessSpec::fixed(
            TpccTable::Customer.id(),
            keys::customer(w, d, c),
            AccessOp::Read,
        ),
        AccessSpec {
            table: TpccTable::NewOrder.id(),
            key: KeySpec::Fixed(keys::order(w, d, FIRST_NEW_ORDER_ID)),
            op: AccessOp::Scan { len: 64 },
        },
        AccessSpec {
            table: TpccTable::OrderLine.id(),
            key: KeySpec::Fixed(keys::order_line(w, d, o_guess, 0)),
            op: AccessOp::Scan { len: 16 },
        },
    ];

    TxnTemplate {
        accesses,
        partitions: vec![w as PartId],
        user_abort: false,
        logic_per_query: 1,
        tag: TAG_ORDER_STATUS,
    }
}

/// Build the Payment template from already-drawn parameters: home district
/// `(w, d)`, the paying customer `c` of district `(cw, cd)` (equal to
/// `(w, d)` unless remote), and a pre-allocated unique HISTORY key.
pub fn payment_template(w: u64, d: u64, cw: u64, cd: u64, c: u64, hkey: Key) -> TxnTemplate {
    let accesses = vec![
        AccessSpec::fixed(TpccTable::Warehouse.id(), w, AccessOp::Update),
        AccessSpec::fixed(
            TpccTable::District.id(),
            keys::district(w, d),
            AccessOp::Update,
        ),
        AccessSpec::fixed(
            TpccTable::Customer.id(),
            keys::customer(cw, cd, c),
            AccessOp::Update,
        ),
        AccessSpec::fixed(TpccTable::History.id(), hkey, AccessOp::Insert),
    ];

    let mut partitions = vec![w as PartId];
    if cw != w {
        partitions.push(cw as PartId);
    }
    partitions.sort_unstable();

    TxnTemplate {
        accesses,
        partitions,
        user_abort: false,
        logic_per_query: 1,
        tag: TAG_PAYMENT,
    }
}

/// Build the NewOrder template from already-drawn parameters: customer `c`
/// ordering `items` (each `(item, supply_warehouse)`, distinct items) in
/// district `(w, d)`. Insert keys derive from the captured D_NEXT_O_ID
/// (slot 0), exactly as [`TpccGen::new_order`] produces.
pub fn new_order_template(
    w: u64,
    d: u64,
    c: u64,
    items: &[(u64, u64)],
    user_abort: bool,
) -> TxnTemplate {
    let ol_cnt = items.len() as u64;
    let dkey = keys::district(w, d);

    let mut accesses = Vec::with_capacity(6 + 3 * items.len());
    accesses.push(AccessSpec::fixed(
        TpccTable::Warehouse.id(),
        w,
        AccessOp::Read,
    ));
    accesses.push(AccessSpec {
        table: TpccTable::District.id(),
        key: KeySpec::Fixed(dkey),
        op: AccessOp::UpdateCounter { slot: 0 },
    });
    accesses.push(AccessSpec::fixed(
        TpccTable::Customer.id(),
        keys::customer(w, d, c),
        AccessOp::Read,
    ));

    let mut partitions = vec![w as PartId];
    for &(i, supply_w) in items {
        if !partitions.contains(&(supply_w as PartId)) {
            partitions.push(supply_w as PartId);
        }
        accesses.push(AccessSpec::fixed(TpccTable::Item.id(), i, AccessOp::Read));
        accesses.push(AccessSpec::fixed(
            TpccTable::Stock.id(),
            keys::stock(supply_w, i),
            AccessOp::Update,
        ));
    }

    // Inserts keyed by the captured D_NEXT_O_ID (slot 0).
    accesses.push(AccessSpec {
        table: TpccTable::Order.id(),
        key: KeySpec::Derived {
            slot: 0,
            base: dkey << 32,
            scale: 1,
        },
        op: AccessOp::Insert,
    });
    accesses.push(AccessSpec {
        table: TpccTable::NewOrder.id(),
        key: KeySpec::Derived {
            slot: 0,
            base: dkey << 32,
            scale: 1,
        },
        op: AccessOp::Insert,
    });
    for ol in 0..ol_cnt {
        accesses.push(AccessSpec {
            table: TpccTable::OrderLine.id(),
            key: KeySpec::Derived {
                slot: 0,
                base: ((dkey << 32) << 4) | ol,
                scale: 16,
            },
            op: AccessOp::Insert,
        });
    }

    partitions.sort_unstable();

    TxnTemplate {
        accesses,
        partitions,
        user_abort,
        logic_per_query: 1,
        tag: TAG_NEW_ORDER,
    }
}

/// Initial-load population: yields `(table, key)` pairs for every row the
/// database starts with. The caller materializes rows (real engine) or
/// registers keys (simulator).
pub fn initial_keys(cfg: &TpccConfig) -> impl Iterator<Item = (u32, Key)> + '_ {
    let w = u64::from(cfg.warehouses);
    let warehouses = (0..w).map(|k| (TpccTable::Warehouse.id(), k));
    let districts = (0..w * DISTRICTS_PER_WH).map(|k| (TpccTable::District.id(), k));
    let customers =
        (0..w * DISTRICTS_PER_WH * CUSTOMERS_PER_DISTRICT).map(|k| (TpccTable::Customer.id(), k));
    let items = (0..ITEMS).map(|k| (TpccTable::Item.id(), k));
    let stock = (0..w * ITEMS).map(|k| (TpccTable::Stock.id(), k));
    warehouses
        .chain(districts)
        .chain(customers)
        .chain(items)
        .chain(stock)
}

/// Initialize a freshly-allocated TPC-C row: key in column 0; the hot
/// column starts at [`FIRST_NEW_ORDER_ID`] for districts (D_NEXT_O_ID) and
/// zero elsewhere.
pub fn init_row(table: u32, schema: &Schema, row: &mut [u8], key: Key) {
    abyss_storage::row::set_u64(schema, row, 0, key);
    let hot0 = if table == TpccTable::District.id() {
        FIRST_NEW_ORDER_ID
    } else {
        0
    };
    abyss_storage::row::set_u64(schema, row, 1, hot0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TpccConfig {
        TpccConfig {
            warehouses: 4,
            workers: 8,
            ..TpccConfig::default()
        }
    }

    #[test]
    fn key_encodings_round_trip() {
        let k = keys::order_line(3, 7, 4321, 11);
        assert_eq!(keys::order_line_wh(k), 3);
        assert_eq!(keys::order_wh(keys::order(3, 7, 4321)), 3);
        assert_eq!(keys::district_wh(keys::district(9, 4)), 9);
        // distinct composite keys never collide
        assert_ne!(keys::order(1, 0, 5), keys::order(0, 1, 5));
        assert_ne!(keys::order_line(1, 2, 3, 4), keys::order_line(1, 2, 3, 5));
    }

    #[test]
    fn payment_shape() {
        let mut g = TpccGen::new(config(), 1, 77);
        let t = g.payment();
        assert_eq!(t.tag, TAG_PAYMENT);
        assert_eq!(t.len(), 4);
        assert!(t.validate().is_ok());
        assert!(!t.user_abort);
        // warehouse + district + customer updates, history insert
        assert_eq!(t.accesses[0].op, AccessOp::Update);
        assert_eq!(t.accesses[3].op, AccessOp::Insert);
    }

    #[test]
    fn new_order_shape() {
        let mut g = TpccGen::new(config(), 0, 5);
        let t = g.new_order();
        assert_eq!(t.tag, TAG_NEW_ORDER);
        assert!(t.validate().is_ok(), "{:?}", t.validate());
        // 3 header accesses + 2 per item + 2 order inserts + 1 line per item
        let items = (t.len() - 5) / 3;
        assert!((5..=15).contains(&items), "ol_cnt {items}");
        assert_eq!(t.len(), 5 + 3 * items);
    }

    #[test]
    fn remote_payment_rate() {
        let cfg = config();
        let mut g = TpccGen::new(cfg.clone(), 0, 11);
        let mut remote = 0;
        let n = 4000;
        for _ in 0..n {
            let t = g.payment();
            if t.partitions.len() > 1 {
                remote += 1;
            }
        }
        let frac = f64::from(remote) / f64::from(n);
        assert!((frac - 0.15).abs() < 0.03, "remote payment fraction {frac}");
    }

    #[test]
    fn new_order_multi_partition_rate_matches_paper() {
        // ~1% per item with 5-15 items ⇒ ~10% of NewOrders touch a remote
        // warehouse (§3.3 / §5.6).
        let mut g = TpccGen::new(config(), 0, 13);
        let n = 4000;
        let mpt = (0..n)
            .filter(|_| g.new_order().is_multi_partition())
            .count();
        let frac = mpt as f64 / f64::from(n);
        assert!(
            (0.05..=0.16).contains(&frac),
            "NewOrder MPT fraction {frac}"
        );
    }

    #[test]
    fn user_abort_rate() {
        let mut g = TpccGen::new(config(), 0, 17);
        let n = 10_000;
        let aborts = (0..n).filter(|_| g.new_order().user_abort).count();
        let frac = aborts as f64 / f64::from(n);
        assert!((frac - 0.01).abs() < 0.005, "user abort fraction {frac}");
    }

    #[test]
    fn mix_is_half_payment() {
        let mut g = TpccGen::new(config(), 2, 19);
        let n = 4000;
        let payments = (0..n).filter(|_| g.next_txn().tag == TAG_PAYMENT).count();
        let frac = payments as f64 / f64::from(n);
        assert!((frac - 0.5).abs() < 0.05, "payment fraction {frac}");
    }

    #[test]
    fn home_warehouses_round_robin() {
        let cfg = config();
        assert_eq!(cfg.home_warehouse(0), 0);
        assert_eq!(cfg.home_warehouse(5), 1);
        assert_eq!(cfg.home_warehouse(7), 3);
    }

    #[test]
    fn catalog_capacities() {
        let cfg = TpccConfig {
            warehouses: 2,
            ..config()
        };
        let cat = catalog(&cfg);
        assert_eq!(cat.len(), 9);
        assert_eq!(cat.table(TpccTable::Warehouse.id()).unwrap().capacity, 2);
        assert_eq!(cat.table(TpccTable::District.id()).unwrap().capacity, 20);
        assert_eq!(cat.table(TpccTable::Stock.id()).unwrap().capacity, 200_000);
        // order-family tables have insert headroom
        assert!(cat.table(TpccTable::Order.id()).unwrap().capacity > 60_000);
    }

    #[test]
    fn initial_keys_counts() {
        let cfg = TpccConfig {
            warehouses: 2,
            ..config()
        };
        let counts = initial_keys(&cfg).fold([0u64; 9], |mut acc, (t, _)| {
            acc[t as usize] += 1;
            acc
        });
        assert_eq!(counts[TpccTable::Warehouse.id() as usize], 2);
        assert_eq!(counts[TpccTable::District.id() as usize], 20);
        assert_eq!(counts[TpccTable::Customer.id() as usize], 60_000);
        assert_eq!(counts[TpccTable::Item.id() as usize], ITEMS);
        assert_eq!(counts[TpccTable::Stock.id() as usize], 200_000);
        assert_eq!(counts[TpccTable::Order.id() as usize], 0); // loaded empty
    }

    #[test]
    fn district_rows_start_at_first_order_id() {
        let cfg = config();
        let cat = catalog(&cfg);
        let dschema = &cat.table(TpccTable::District.id()).unwrap().schema;
        let mut row = vec![0u8; dschema.row_size()];
        init_row(TpccTable::District.id(), dschema, &mut row, 7);
        assert_eq!(
            abyss_storage::row::get_u64(dschema, &row, 1),
            FIRST_NEW_ORDER_ID
        );
        let wschema = &cat.table(TpccTable::Warehouse.id()).unwrap().schema;
        let mut wrow = vec![0u8; wschema.row_size()];
        init_row(TpccTable::Warehouse.id(), wschema, &mut wrow, 1);
        assert_eq!(abyss_storage::row::get_u64(wschema, &wrow, 1), 0);
    }
}
