//! YCSB workload generation (§3.3 of the paper).
//!
//! The database is a single table of `table_rows` records, each a 64-bit
//! key plus ten 100-byte columns. A transaction performs
//! `reqs_per_txn` independent index look-ups; each access updates its tuple
//! with probability `1 - read_pct`. Keys follow a Zipfian distribution with
//! skew `theta` (see [`abyss_common::zipf`]).
//!
//! Extra knobs reproduce specific experiments:
//!
//! * `ordered_keys` — accesses sorted by primary key, removing deadlocks,
//!   for the Fig. 4 lock-thrashing experiment;
//! * `parts` / `multi_part_pct` / `parts_per_txn` — partitioned generation
//!   for the H-STORE experiments (Figs. 14–15). Partitioning uses
//!   `key % parts` (the paper's "simple hashing strategy to assign tuples
//!   to partitions based on their primary keys");
//! * `scan_pct` / `scan_max_len` / `insert_pct` — the **YCSB-E** scan/insert
//!   mix (short ranges of uniform length `1..=scan_max_len`, fresh-key
//!   inserts), the workload CCBench shows reshuffles the paper's scheme
//!   ranking. Scans require the catalog's ordered index, which
//!   [`catalog`] adds automatically when `scan_pct > 0`.

use abyss_common::rng::Xoshiro256;
use abyss_common::zipf::ZipfGen;
use abyss_common::{AccessOp, AccessSpec, Key, PartId, TxnTemplate};
use abyss_storage::{Catalog, Schema};

/// The YCSB table id in the catalog built by [`catalog`].
pub const YCSB_TABLE: u32 = 0;

/// Number of payload columns (paper: 10 × 100 B).
pub const PAYLOAD_COLUMNS: usize = 10;
/// Width of each payload column in bytes.
pub const PAYLOAD_WIDTH: usize = 100;

/// Tunable YCSB parameters. Defaults mirror the paper's base configuration.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Rows in the table. Paper: 20M (~20 GB).
    pub table_rows: u64,
    /// Index look-ups per transaction. Paper default: 16 (Fig. 12 sweeps it).
    pub reqs_per_txn: usize,
    /// Probability an access is a read (the rest are read-modify-writes).
    pub read_pct: f64,
    /// Zipfian skew; 0 = uniform, 0.6 = medium, 0.8 = high contention.
    pub theta: f64,
    /// Sort each transaction's keys ascending (Fig. 4: deadlock-free 2PL).
    pub ordered_keys: bool,
    /// Number of partitions (1 = unpartitioned).
    pub parts: u32,
    /// Fraction of transactions that are multi-partition (Fig. 15a).
    pub multi_part_pct: f64,
    /// Partitions each multi-partition transaction touches (Fig. 15b).
    pub parts_per_txn: u32,
    /// Probability an access is a range scan (YCSB-E).
    pub scan_pct: f64,
    /// Of the scans, the fraction aimed at the *insert frontier* (YCSB's
    /// "latest" distribution): the range straddles the keys freshly
    /// appended by concurrent inserters, which is where scan/insert
    /// phantom conflicts actually live — Zipfian scans over the dense
    /// loaded keyspace almost never meet an insert.
    pub scan_latest_pct: f64,
    /// Scan lengths are uniform in `1..=scan_max_len` (YCSB-E's default
    /// distribution, max 100).
    pub scan_max_len: u32,
    /// Probability an access inserts a fresh key (YCSB-E: 5%). Insert keys
    /// are worker-unique: `table_rows + worker + seq * insert_stride`.
    pub insert_pct: f64,
    /// Stride between one worker's consecutive insert keys — must be at
    /// least the worker count for streams to stay disjoint.
    pub insert_stride: u32,
    /// Extra arena capacity reserved for inserts (rows beyond
    /// `table_rows`); sized into the catalog.
    pub insert_capacity: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        Self {
            table_rows: 20_000_000,
            reqs_per_txn: 16,
            read_pct: 0.5,
            theta: 0.0,
            ordered_keys: false,
            parts: 1,
            multi_part_pct: 0.0,
            parts_per_txn: 1,
            scan_pct: 0.0,
            scan_latest_pct: 0.0,
            scan_max_len: 100,
            insert_pct: 0.0,
            insert_stride: 1024,
            insert_capacity: 0,
        }
    }
}

impl YcsbConfig {
    /// 100% reads, uniform — Fig. 8's baseline.
    pub fn read_only() -> Self {
        Self {
            read_pct: 1.0,
            ..Self::default()
        }
    }

    /// 50/50 read/update mix at the given skew — Figs. 9–13.
    pub fn write_intensive(theta: f64) -> Self {
        Self {
            read_pct: 0.5,
            theta,
            ..Self::default()
        }
    }

    /// 90/10 read/update mix — the paper's "read-intensive" setting (Fig. 3).
    pub fn read_intensive(theta: f64) -> Self {
        Self {
            read_pct: 0.9,
            theta,
            ..Self::default()
        }
    }

    /// A YCSB-E-style scan/insert mix: `scan_pct` of accesses are short
    /// range scans, 5% are fresh-key inserts (capped by what the scan
    /// fraction leaves), and the rest are reads. `scan_pct = 0.95` is
    /// YCSB-E proper; sweeping it toward 0.05 trades scans for reads while
    /// keeping the insert pressure that makes phantoms possible.
    pub fn ycsb_e(scan_pct: f64) -> Self {
        Self {
            reqs_per_txn: 4,
            read_pct: 1.0, // non-scan, non-insert accesses are reads
            scan_pct,
            scan_latest_pct: 0.2,
            scan_max_len: 100,
            insert_pct: (1.0 - scan_pct).min(0.05),
            ..Self::default()
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.table_rows == 0 {
            return Err("table_rows must be positive".into());
        }
        if self.reqs_per_txn == 0 {
            return Err("reqs_per_txn must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.read_pct) {
            return Err(format!("read_pct out of range: {}", self.read_pct));
        }
        if !(0.0..1.0).contains(&self.theta) {
            return Err(format!("theta out of range: {}", self.theta));
        }
        if self.parts == 0 {
            return Err("parts must be at least 1".into());
        }
        if self.parts_per_txn > self.parts {
            return Err("parts_per_txn exceeds parts".into());
        }
        if self.reqs_per_txn as u64 > self.table_rows {
            return Err("reqs_per_txn exceeds distinct keys".into());
        }
        if !(0.0..=1.0).contains(&self.scan_pct) {
            return Err(format!("scan_pct out of range: {}", self.scan_pct));
        }
        if !(0.0..=1.0).contains(&self.scan_latest_pct) {
            return Err(format!(
                "scan_latest_pct out of range: {}",
                self.scan_latest_pct
            ));
        }
        if !(0.0..=1.0).contains(&self.insert_pct) {
            return Err(format!("insert_pct out of range: {}", self.insert_pct));
        }
        if self.scan_pct + self.insert_pct > 1.0 {
            return Err("scan_pct + insert_pct exceeds 1".into());
        }
        if self.scan_pct > 0.0
            && (self.scan_max_len == 0 || u64::from(self.scan_max_len) > self.table_rows)
        {
            return Err(format!("scan_max_len out of range: {}", self.scan_max_len));
        }
        Ok(())
    }

    /// Does this mix generate inserts? (Sizes the catalog's headroom.)
    pub fn has_inserts(&self) -> bool {
        self.insert_pct > 0.0
    }
}

/// Build the YCSB catalog: one table, 8-byte key + ten 100-byte columns.
/// Scan mixes get an ordered index and insert headroom in the arena.
pub fn catalog(cfg: &YcsbConfig) -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::key_plus_payload(PAYLOAD_COLUMNS, PAYLOAD_WIDTH);
    let capacity = cfg.table_rows + cfg.insert_capacity;
    if cfg.scan_pct > 0.0 {
        c.add_ordered_table("usertable", schema, capacity);
    } else {
        c.add_table("usertable", schema, capacity);
    }
    c
}

/// Per-worker YCSB transaction generator. Each worker seeds its own
/// generator (`seed` should differ per worker) so streams are independent
/// yet reproducible.
#[derive(Debug, Clone)]
pub struct YcsbGen {
    cfg: YcsbConfig,
    zipf: ZipfGen,
    rng: Xoshiro256,
    /// Scratch for in-transaction key dedup.
    keys: Vec<Key>,
    /// Home partition: single-partition transactions run here (the
    /// H-STORE execution-engine model — each worker serves its own
    /// partition's queue, §2.2). `None` picks a random partition per
    /// transaction.
    home: Option<PartId>,
    /// This generator's worker id — the disjoint insert-key stream seed.
    worker: u32,
    /// Monotonic per-worker insert sequence.
    insert_seq: u64,
}

impl YcsbGen {
    /// Create a generator. The Zipf zeta sum is computed once here.
    pub fn new(cfg: YcsbConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid YCSB config");
        let zipf = ZipfGen::new(cfg.table_rows, cfg.theta);
        Self {
            cfg,
            zipf,
            rng: Xoshiro256::seed_from(seed),
            keys: Vec::new(),
            home: None,
            worker: 0,
            insert_seq: 0,
        }
    }

    /// Create a generator reusing an already-built Zipf table (the zeta sum
    /// for 20M rows costs ~100 ms; workers share it).
    pub fn with_zipf(cfg: YcsbConfig, zipf: ZipfGen, seed: u64) -> Self {
        cfg.validate().expect("invalid YCSB config");
        assert_eq!(zipf.n(), cfg.table_rows, "zipf table size mismatch");
        assert!(
            (zipf.theta() - cfg.theta).abs() < 1e-12,
            "zipf theta mismatch"
        );
        Self {
            cfg,
            zipf,
            rng: Xoshiro256::seed_from(seed),
            keys: Vec::new(),
            home: None,
            worker: 0,
            insert_seq: 0,
        }
    }

    /// Bind this generator to worker `worker`: single-partition
    /// transactions target partition `worker % parts` (the paper's
    /// one-engine-per-partition model); multi-partition transactions add
    /// random remote partitions. Insert-key streams are disjoint per
    /// worker (YCSB-E), so binding is mandatory for insert mixes with more
    /// than one worker.
    pub fn for_worker(mut self, worker: u32) -> Self {
        assert!(
            u64::from(worker) < u64::from(self.cfg.insert_stride),
            "worker id must stay below insert_stride"
        );
        self.worker = worker;
        if self.cfg.parts > 1 {
            self.home = Some(worker % self.cfg.parts);
        }
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    /// Draw a Zipf key not already in this transaction.
    fn fresh_zipf_key(&mut self) -> Key {
        loop {
            let k = self.zipf.next(&mut self.rng);
            if !self.keys.contains(&k) {
                return k;
            }
        }
    }

    /// Draw a uniform key in partition `p` (key ≡ p mod parts) not already
    /// in this transaction.
    fn fresh_part_key(&mut self, p: PartId) -> Key {
        let parts = u64::from(self.cfg.parts);
        let rows_in_part = self.cfg.table_rows / parts;
        loop {
            let r = self.rng.next_below(rows_in_part);
            let k = r * parts + u64::from(p);
            if !self.keys.contains(&k) {
                return k;
            }
        }
    }

    fn next_op(&mut self) -> AccessOp {
        if self.rng.chance(self.cfg.read_pct) {
            AccessOp::Read
        } else {
            AccessOp::Update
        }
    }

    /// Generate the next transaction.
    pub fn next_txn(&mut self) -> TxnTemplate {
        if self.cfg.scan_pct > 0.0 || self.cfg.insert_pct > 0.0 {
            return self.next_txn_scan_mix();
        }
        self.keys.clear();
        let n = self.cfg.reqs_per_txn;
        let mut accesses = Vec::with_capacity(n);
        let mut partitions: Vec<PartId> = Vec::new();

        if self.cfg.parts <= 1 {
            for _ in 0..n {
                let k = self.fresh_zipf_key();
                self.keys.push(k);
                let op = self.next_op();
                accesses.push(AccessSpec::fixed(YCSB_TABLE, k, op));
            }
            partitions.push(0);
        } else {
            // Partitioned generation (Figs. 14-15): pick the partition set
            // first, then spread the accesses round-robin across it.
            let want = if self.rng.chance(self.cfg.multi_part_pct) {
                (self.cfg.parts_per_txn.max(2)).min(self.cfg.parts)
            } else {
                1
            };
            if let Some(home) = self.home {
                partitions.push(home);
            }
            while partitions.len() < want as usize {
                let p = self.rng.next_below(u64::from(self.cfg.parts)) as PartId;
                if !partitions.contains(&p) {
                    partitions.push(p);
                }
            }
            for i in 0..n {
                let p = partitions[i % partitions.len()];
                let k = self.fresh_part_key(p);
                self.keys.push(k);
                let op = self.next_op();
                accesses.push(AccessSpec::fixed(YCSB_TABLE, k, op));
            }
        }

        if self.cfg.ordered_keys {
            accesses.sort_by_key(|a| match a.key {
                abyss_common::KeySpec::Fixed(k) => k,
                _ => unreachable!("YCSB only generates fixed keys"),
            });
        }
        partitions.sort_unstable();

        let mut t = TxnTemplate::new(accesses);
        t.partitions = partitions;
        t
    }

    /// YCSB-E generation: a per-access mix of range scans, fresh-key
    /// inserts and point reads/updates. Keys are Zipfian regardless of
    /// partitioning (the "simple hashing" partition map means a contiguous
    /// scan range fans out over up to `min(len, parts)` partitions — the
    /// cross-partition cost H-STORE pays for scans is the point).
    fn next_txn_scan_mix(&mut self) -> TxnTemplate {
        self.keys.clear();
        let parts = u64::from(self.cfg.parts);
        let n = self.cfg.reqs_per_txn;
        let mut accesses = Vec::with_capacity(n);
        let mut partitions: Vec<PartId> = Vec::new();
        fn add_part(partitions: &mut Vec<PartId>, p: PartId) {
            if !partitions.contains(&p) {
                partitions.push(p);
            }
        }
        for _ in 0..n {
            let roll = self.rng.next_f64();
            if roll < self.cfg.scan_pct {
                let len = self.rng.next_range(1, u64::from(self.cfg.scan_max_len)) as u32;
                let low = if self.rng.chance(self.cfg.scan_latest_pct) {
                    // "Latest" scan: straddle the insert frontier. Workers
                    // append in near-lockstep, so this worker's own stream
                    // position approximates the global frontier; the range
                    // covers other workers' freshest keys and the gaps the
                    // next inserts will fill — the phantom-prone region.
                    let frontier = self.cfg.table_rows
                        + self
                            .insert_seq
                            .saturating_mul(u64::from(self.cfg.insert_stride));
                    frontier.saturating_sub(u64::from(len) / 2)
                } else {
                    self.zipf
                        .next(&mut self.rng)
                        .min(self.cfg.table_rows - u64::from(len))
                };
                accesses.push(AccessSpec {
                    table: YCSB_TABLE,
                    key: abyss_common::KeySpec::Fixed(low),
                    op: AccessOp::Scan { len },
                });
                if parts > 1 {
                    for k in low..low + u64::from(len).min(parts) {
                        add_part(&mut partitions, (k % parts) as PartId);
                    }
                }
            } else if roll < self.cfg.scan_pct + self.cfg.insert_pct {
                let key = self.cfg.table_rows
                    + u64::from(self.worker)
                    + self.insert_seq * u64::from(self.cfg.insert_stride);
                self.insert_seq += 1;
                accesses.push(AccessSpec::fixed(YCSB_TABLE, key, AccessOp::Insert));
                if parts > 1 {
                    add_part(&mut partitions, (key % parts) as PartId);
                }
            } else {
                let k = self.fresh_zipf_key();
                self.keys.push(k);
                let op = self.next_op();
                accesses.push(AccessSpec::fixed(YCSB_TABLE, k, op));
                if parts > 1 {
                    add_part(&mut partitions, (k % parts) as PartId);
                }
            }
        }
        if parts <= 1 {
            partitions.push(0);
        }
        partitions.sort_unstable();
        let mut t = TxnTemplate::new(accesses);
        t.partitions = partitions;
        t
    }
}

/// Iterator over the keys to load (0..rows). Initializer writes the key in
/// column 0 and a worker-recognizable fill pattern in the payload.
pub fn init_row(schema: &Schema, row: &mut [u8], key: Key) {
    abyss_storage::row::set_u64(schema, row, 0, key);
    for col in 1..schema.column_count() {
        abyss_storage::row::fill_column(schema, row, col, (key as u8) ^ (col as u8));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_common::KeySpec;

    fn gen(cfg: YcsbConfig) -> YcsbGen {
        YcsbGen::new(cfg, 42)
    }

    fn key_of(a: &AccessSpec) -> Key {
        match a.key {
            KeySpec::Fixed(k) => k,
            _ => panic!("expected fixed key"),
        }
    }

    #[test]
    fn txn_shape_matches_config() {
        let cfg = YcsbConfig {
            table_rows: 10_000,
            reqs_per_txn: 16,
            ..YcsbConfig::default()
        };
        let mut g = gen(cfg);
        let t = g.next_txn();
        assert_eq!(t.len(), 16);
        assert!(t.validate().is_ok());
        assert_eq!(t.partitions, vec![0]);
    }

    #[test]
    fn keys_within_txn_are_distinct() {
        let cfg = YcsbConfig {
            table_rows: 1000,
            theta: 0.8, // heavy skew: collisions would be common without dedup
            ..YcsbConfig::default()
        };
        let mut g = gen(cfg);
        for _ in 0..100 {
            let t = g.next_txn();
            let mut ks: Vec<Key> = t.accesses.iter().map(key_of).collect();
            ks.sort_unstable();
            ks.dedup();
            assert_eq!(ks.len(), t.len());
        }
    }

    #[test]
    fn read_only_config_generates_only_reads() {
        let cfg = YcsbConfig {
            table_rows: 10_000,
            ..YcsbConfig::read_only()
        };
        let mut g = gen(cfg);
        for _ in 0..50 {
            assert!(g.next_txn().is_read_only());
        }
    }

    #[test]
    fn write_mix_is_calibrated() {
        let cfg = YcsbConfig {
            table_rows: 100_000,
            ..YcsbConfig::write_intensive(0.0)
        };
        let mut g = gen(cfg);
        let mut writes = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let t = g.next_txn();
            writes += t.accesses.iter().filter(|a| a.op.is_write()).count();
            total += t.len();
        }
        let frac = writes as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn ordered_keys_are_sorted() {
        let cfg = YcsbConfig {
            table_rows: 10_000,
            ordered_keys: true,
            theta: 0.6,
            ..YcsbConfig::default()
        };
        let mut g = gen(cfg);
        for _ in 0..20 {
            let t = g.next_txn();
            let ks: Vec<Key> = t.accesses.iter().map(key_of).collect();
            assert!(
                ks.windows(2).all(|w| w[0] < w[1]),
                "keys not sorted: {ks:?}"
            );
        }
    }

    #[test]
    fn single_partition_txns_stay_in_one_partition() {
        let cfg = YcsbConfig {
            table_rows: 64_000,
            parts: 16,
            multi_part_pct: 0.0,
            ..YcsbConfig::default()
        };
        let mut g = gen(cfg);
        for _ in 0..50 {
            let t = g.next_txn();
            assert_eq!(t.partitions.len(), 1);
            let p = u64::from(t.partitions[0]);
            for a in &t.accesses {
                assert_eq!(key_of(a) % 16, p);
            }
        }
    }

    #[test]
    fn multi_partition_fraction_and_spread() {
        let cfg = YcsbConfig {
            table_rows: 64_000,
            parts: 16,
            multi_part_pct: 0.5,
            parts_per_txn: 4,
            ..YcsbConfig::default()
        };
        let mut g = gen(cfg);
        let mut mpt = 0;
        for _ in 0..400 {
            let t = g.next_txn();
            if t.is_multi_partition() {
                mpt += 1;
                assert_eq!(t.partitions.len(), 4);
                // every access's key must fall in one of the chosen partitions
                for a in &t.accesses {
                    let p = (key_of(a) % 16) as PartId;
                    assert!(t.partitions.contains(&p));
                }
            }
        }
        let frac = mpt as f64 / 400.0;
        assert!((frac - 0.5).abs() < 0.1, "multi-partition fraction {frac}");
    }

    #[test]
    fn generators_are_reproducible() {
        let cfg = YcsbConfig {
            table_rows: 10_000,
            theta: 0.6,
            ..YcsbConfig::default()
        };
        let mut a = YcsbGen::new(cfg.clone(), 7);
        let mut b = YcsbGen::new(cfg, 7);
        for _ in 0..20 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }

    #[test]
    fn catalog_has_paper_row_size() {
        let c = catalog(&YcsbConfig {
            table_rows: 100,
            ..YcsbConfig::default()
        });
        let t = c.table(YCSB_TABLE).unwrap();
        assert_eq!(t.schema.row_size(), 1008); // 8-byte key + 10 × 100 B
        assert_eq!(t.capacity, 100);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(YcsbConfig {
            table_rows: 0,
            ..YcsbConfig::default()
        }
        .validate()
        .is_err());
        assert!(YcsbConfig {
            theta: 1.0,
            ..YcsbConfig::default()
        }
        .validate()
        .is_err());
        assert!(YcsbConfig {
            read_pct: 1.5,
            ..YcsbConfig::default()
        }
        .validate()
        .is_err());
        assert!(YcsbConfig {
            parts: 4,
            parts_per_txn: 8,
            ..YcsbConfig::default()
        }
        .validate()
        .is_err());
    }
}
