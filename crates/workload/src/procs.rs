//! Stored-procedure argument codecs for the serving layer.
//!
//! The transaction service (`abyss_core::serve`) takes `(proc_name, args)`
//! pairs where `args` is a flat `&[u64]` — the wire-friendly shape a real
//! front end would receive. This module defines one decoder per procedure
//! that turns such an argument vector into the exact [`TxnTemplate`] the
//! closed-loop generators produce, plus the matching encoders so producers
//! (benches, tests) and decoders can never drift apart.
//!
//! Every decoder is a plain `fn(&[u64]) -> TxnTemplate`, which coerces
//! into the registry's boxed `ProcFn` without this crate depending on the
//! engine. Register the whole set with [`all`]:
//!
//! ```ignore
//! let mut reg = ProcRegistry::new();
//! for (name, f) in abyss_workload::procs::all() {
//!     reg.register(name, Box::new(f));
//! }
//! ```
//!
//! Malformed argument vectors panic: the registry's producers are in-process
//! and encode with the functions below, so a shape mismatch is a bug, not
//! input to tolerate.

use abyss_common::{AccessOp, AccessSpec, TxnTemplate};

use crate::tpcc;
use crate::ycsb::YCSB_TABLE;

/// Registry name of the YCSB read/update procedure.
pub const PROC_YCSB_RMW: &str = "ycsb_rmw";
/// Registry name of the TPC-C Payment procedure.
pub const PROC_TPCC_PAYMENT: &str = "tpcc_payment";
/// Registry name of the TPC-C NewOrder procedure.
pub const PROC_TPCC_NEW_ORDER: &str = "tpcc_new_order";
/// Registry name of the TPC-C OrderStatus procedure.
pub const PROC_TPCC_ORDER_STATUS: &str = "tpcc_order_status";

/// A stored-procedure decoder: flat argument vector in, template out.
pub type ProcDecoder = fn(&[u64]) -> TxnTemplate;

/// Every procedure this crate ships, as `(name, decoder)` pairs ready to
/// register. The `fn` pointers coerce into the serving layer's boxed
/// `ProcFn`.
pub fn all() -> [(&'static str, ProcDecoder); 4] {
    [
        (PROC_YCSB_RMW, ycsb_rmw),
        (PROC_TPCC_PAYMENT, tpcc_payment),
        (PROC_TPCC_NEW_ORDER, tpcc_new_order),
        (PROC_TPCC_ORDER_STATUS, tpcc_order_status),
    ]
}

// ---------------------------------------------------------------- YCSB --

/// Encode a YCSB read/update transaction: `write_mask` bit `i` makes
/// access `i` an update (read otherwise); one key per access. At most 64
/// accesses — the paper's transactions use 16.
pub fn ycsb_rmw_args(write_mask: u64, keys: &[u64]) -> Vec<u64> {
    assert!(keys.len() <= 64, "write_mask covers at most 64 accesses");
    let mut args = Vec::with_capacity(1 + keys.len());
    args.push(write_mask);
    args.extend_from_slice(keys);
    args
}

/// Decode [`ycsb_rmw_args`]: `args[0]` is the write mask, `args[1..]` the
/// keys. Single-partition (the service's YCSB table is unpartitioned).
pub fn ycsb_rmw(args: &[u64]) -> TxnTemplate {
    assert!(!args.is_empty(), "ycsb_rmw needs a write mask");
    let (mask, keys) = (args[0], &args[1..]);
    assert!(!keys.is_empty(), "ycsb_rmw needs at least one key");
    assert!(keys.len() <= 64, "write_mask covers at most 64 accesses");
    let accesses = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let op = if mask >> i & 1 == 1 {
                AccessOp::Update
            } else {
                AccessOp::Read
            };
            AccessSpec::fixed(YCSB_TABLE, k, op)
        })
        .collect();
    TxnTemplate::new(accesses)
}

// --------------------------------------------------------------- TPC-C --

/// Encode Payment parameters (see [`tpcc::payment_template`]).
pub fn tpcc_payment_args(w: u64, d: u64, cw: u64, cd: u64, c: u64, hkey: u64) -> [u64; 6] {
    [w, d, cw, cd, c, hkey]
}

/// Decode [`tpcc_payment_args`] into the Payment template.
pub fn tpcc_payment(args: &[u64]) -> TxnTemplate {
    let [w, d, cw, cd, c, hkey]: [u64; 6] = args
        .try_into()
        .expect("tpcc_payment takes [w,d,cw,cd,c,hkey]");
    tpcc::payment_template(w, d, cw, cd, c, hkey)
}

/// Encode NewOrder parameters: `[w, d, c, user_abort, item0, supply_w0,
/// item1, supply_w1, ...]` (see [`tpcc::new_order_template`]).
pub fn tpcc_new_order_args(
    w: u64,
    d: u64,
    c: u64,
    items: &[(u64, u64)],
    user_abort: bool,
) -> Vec<u64> {
    let mut args = Vec::with_capacity(4 + 2 * items.len());
    args.extend_from_slice(&[w, d, c, u64::from(user_abort)]);
    for &(i, sw) in items {
        args.push(i);
        args.push(sw);
    }
    args
}

/// Decode [`tpcc_new_order_args`] into the NewOrder template.
pub fn tpcc_new_order(args: &[u64]) -> TxnTemplate {
    assert!(
        args.len() >= 6 && args.len().is_multiple_of(2),
        "tpcc_new_order takes [w,d,c,user_abort,(item,supply_w)+]"
    );
    let (w, d, c, user_abort) = (args[0], args[1], args[2], args[3] != 0);
    let items: Vec<(u64, u64)> = args[4..].chunks_exact(2).map(|p| (p[0], p[1])).collect();
    tpcc::new_order_template(w, d, c, &items, user_abort)
}

/// Encode OrderStatus parameters (see [`tpcc::order_status_template`]).
pub fn tpcc_order_status_args(w: u64, d: u64, c: u64, o_guess: u64) -> [u64; 4] {
    [w, d, c, o_guess]
}

/// Decode [`tpcc_order_status_args`] into the OrderStatus template.
pub fn tpcc_order_status(args: &[u64]) -> TxnTemplate {
    let [w, d, c, o_guess]: [u64; 4] = args
        .try_into()
        .expect("tpcc_order_status takes [w,d,c,o_guess]");
    tpcc::order_status_template(w, d, c, o_guess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::{TAG_NEW_ORDER, TAG_ORDER_STATUS, TAG_PAYMENT};
    use abyss_common::KeySpec;

    #[test]
    fn ycsb_rmw_round_trips_mask_and_keys() {
        let keys = [10, 20, 30, 40];
        let args = ycsb_rmw_args(0b1010, &keys);
        let t = ycsb_rmw(&args);
        assert_eq!(t.len(), 4);
        assert!(t.validate().is_ok());
        for (i, a) in t.accesses.iter().enumerate() {
            assert_eq!(a.key, KeySpec::Fixed(keys[i]));
            let want_write = i == 1 || i == 3;
            assert_eq!(a.op.is_write(), want_write, "access {i}");
        }
    }

    #[test]
    fn tpcc_codecs_match_the_pure_builders() {
        let p = tpcc_payment(&tpcc_payment_args(1, 2, 3, 4, 5, 99));
        assert_eq!(p, tpcc::payment_template(1, 2, 3, 4, 5, 99));
        assert_eq!(p.tag, TAG_PAYMENT);

        let items = [(7, 1), (8, 0), (9, 1)];
        let n = tpcc_new_order(&tpcc_new_order_args(1, 2, 3, &items, true));
        assert_eq!(n, tpcc::new_order_template(1, 2, 3, &items, true));
        assert_eq!(n.tag, TAG_NEW_ORDER);
        assert!(n.user_abort);

        let o = tpcc_order_status(&tpcc_order_status_args(0, 1, 2, 3005));
        assert_eq!(o, tpcc::order_status_template(0, 1, 2, 3005));
        assert_eq!(o.tag, TAG_ORDER_STATUS);
    }

    #[test]
    fn all_lists_every_proc_once() {
        let procs = all();
        let mut names: Vec<_> = procs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), procs.len());
    }

    #[test]
    #[should_panic(expected = "tpcc_payment takes")]
    fn malformed_args_panic() {
        tpcc_payment(&[1, 2, 3]);
    }
}
