//! # abyss-workload
//!
//! The two benchmarks of the paper's evaluation (§3.3), generated as
//! engine-agnostic [`abyss_common::TxnTemplate`]s so that the same stream
//! of transactions drives both the real multi-threaded engine and the
//! many-core simulator.
//!
//! * [`ycsb`] — the Yahoo! Cloud Serving Benchmark: one 20M-row table,
//!   Zipfian access skew controlled by `theta`, 16 requests per
//!   transaction, with knobs for every YCSB experiment in the paper
//!   (read/write mix, working-set size, ordered locking for Fig. 4,
//!   partitioned generation for Figs. 14–15).
//! * [`tpcc`] — TPC-C restricted to Payment + NewOrder (88% of the
//!   standard mix, §3.3), with the spec's remote-warehouse probabilities
//!   and the 1% NewOrder user-abort rule.
//! * [`procs`] — the same transaction bodies as stored procedures:
//!   `fn(&[u64]) -> TxnTemplate` decoders (plus matching encoders) for the
//!   engine's serving layer, so submitted argument vectors build the exact
//!   templates the closed-loop generators produce.

pub mod procs;
pub mod tpcc;
pub mod ycsb;

pub use tpcc::{TpccConfig, TpccGen, TpccTable};
pub use ycsb::{YcsbConfig, YcsbGen};
